package faultnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// InjectedError is the error a sender (or reader) observes when a terminal
// fault — reset or truncate — destroys its connection. Scenario supervisors
// match on it to tell injected crashes from genuine protocol bugs.
type InjectedError struct {
	Action Action
	Link   string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultnet: injected %s on %s", e.Action, e.Link)
}

// timeoutError is returned when an injected read-side delay pushes a frame
// past the caller's read deadline: the frame is dropped and the caller sees
// a standard net timeout, exactly what a straggler deadline expects.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: injected delay exceeded read deadline" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// faultConn injects the plan's faults into one dialed connection, frame by
// frame: writes fault on the dialer→listener direction, reads on the
// reverse. Reads and deadline updates must come from a single goroutine
// (the invariant every fednode node already upholds); Close may race.
type faultConn struct {
	net.Conn
	nw  *Network
	out *dirState // frames this end writes
	in  *dirState // frames the peer writes, delivered to this end

	rdeadline time.Time
	rbuf      []byte
	rerr      error

	closeOnce sync.Once
	closeErr  error
}

// Write applies the plan to one outgoing frame. Non-frame writes (partial
// or foreign bytes) pass through untouched.
func (c *faultConn) Write(p []byte) (int, error) {
	fi, ok := parseFrame(p)
	if !ok {
		return c.Conn.Write(p)
	}
	d := c.out.decide(fi, len(p))
	for _, e := range d.events {
		c.nw.record(e)
	}
	c.waitOut(d.sleep)
	switch d.terminal {
	case ActionReset:
		closeQuiet(c)
		return 0, &InjectedError{Action: ActionReset, Link: c.out.link}
	case ActionTruncate:
		n, werr := c.Conn.Write(p[:d.cut])
		closeQuiet(c)
		if werr != nil {
			return n, fmt.Errorf("faultnet: injected truncate on %s: %w", c.out.link, werr)
		}
		return n, &InjectedError{Action: ActionTruncate, Link: c.out.link}
	}
	if len(d.corrupt) > 0 {
		buf := append([]byte(nil), p...)
		flipBits(buf, d.corrupt)
		return c.Conn.Write(buf)
	}
	return c.Conn.Write(p)
}

// waitOut sleeps through an injected delay plus any active partition on the
// outbound direction. The frame is late, not lost: if the peer's deadline
// fires first, the peer times out and this end's eventual write fails —
// the straggler path, end to end.
func (c *faultConn) waitOut(sleep time.Duration) {
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if until := c.nw.healDeadline(c.out.from, c.out.to); time.Now().Before(until) {
		time.Sleep(time.Until(until))
	}
}

// Read buffers one inbound frame, applies the plan to it, and serves it.
// Non-frame byte streams pass through unmodified.
func (c *faultConn) Read(b []byte) (int, error) {
	if len(c.rbuf) > 0 {
		n := copy(b, c.rbuf)
		c.rbuf = c.rbuf[n:]
		return n, nil
	}
	if c.rerr != nil {
		return 0, c.rerr
	}

	var hdr [wire.HeaderSize]byte
	n, err := io.ReadFull(c.Conn, hdr[:])
	if err != nil {
		if n == 0 {
			return 0, err
		}
		c.rbuf, c.rerr = append([]byte(nil), hdr[:n]...), err
		return c.Read(b)
	}
	payLen := int(binary.BigEndian.Uint32(hdr[8:]))
	if !frameHeaderOK(hdr[:], payLen) {
		c.rbuf = append([]byte(nil), hdr[:]...)
		return c.Read(b)
	}
	frame := make([]byte, wire.HeaderSize+payLen)
	copy(frame, hdr[:])
	if m, err := io.ReadFull(c.Conn, frame[wire.HeaderSize:]); err != nil {
		c.rbuf, c.rerr = frame[:wire.HeaderSize+m], err
		return c.Read(b)
	}

	fi, ok := parseFrame(frame)
	if !ok { // paranoia: a buffered frame always parses
		c.rbuf = frame
		return c.Read(b)
	}
	d := c.in.decide(fi, len(frame))
	for _, e := range d.events {
		c.nw.record(e)
	}
	if dropped, err := c.waitIn(d.sleep); dropped {
		return 0, err
	}
	switch d.terminal {
	case ActionReset:
		closeQuiet(c)
		return 0, &InjectedError{Action: ActionReset, Link: c.in.link}
	case ActionTruncate:
		c.rbuf = frame[:d.cut]
		closeQuiet(c)
		return c.Read(b)
	}
	if len(d.corrupt) > 0 {
		flipBits(frame, d.corrupt)
	}
	c.rbuf = frame
	return c.Read(b)
}

// waitIn sleeps through an injected inbound delay plus any active partition,
// honoring the caller's read deadline: when the wait would cross it, the
// frame is dropped and a net-timeout error surfaces at the deadline instead
// — an injected straggler, indistinguishable from a genuinely slow peer.
func (c *faultConn) waitIn(sleep time.Duration) (dropped bool, err error) {
	target := time.Now().Add(sleep)
	if until := c.nw.healDeadline(c.in.from, c.in.to); until.After(target) {
		target = until
	}
	if !c.rdeadline.IsZero() && target.After(c.rdeadline) {
		if wait := time.Until(c.rdeadline); wait > 0 {
			time.Sleep(wait)
		}
		return true, timeoutError{}
	}
	if wait := time.Until(target); wait > 0 {
		time.Sleep(wait)
	}
	return false, nil
}

// SetReadDeadline tracks the deadline for injected-delay accounting and
// forwards it to the wrapped connection.
func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.rdeadline = t
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline tracks the read half and forwards both.
func (c *faultConn) SetDeadline(t time.Time) error {
	c.rdeadline = t
	return c.Conn.SetDeadline(t)
}

// Close closes the wrapped connection once; later calls return the first
// result.
func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.Conn.Close() })
	return c.closeErr
}

// closeQuiet tears a connection down on a fault path where the close error
// changes nothing.
func closeQuiet(c io.Closer) {
	//lint:ignore dropped-error fault-path close; the connection is being destroyed by design
	c.Close()
}

// frameHeaderOK reports whether a 16-byte header opens a bufferable frame.
func frameHeaderOK(hdr []byte, payLen int) bool {
	if binary.BigEndian.Uint16(hdr) != wire.Magic || hdr[2] != wire.Version {
		return false
	}
	if t := wire.Type(hdr[3]); t < wire.GlobalModel || t > wire.GlobalAggregate {
		return false
	}
	return payLen >= 0 && payLen <= wire.DefaultMaxFrame
}

// flipBits inverts the given payload bit positions in a full frame.
func flipBits(frame []byte, bits []int) {
	for _, bit := range bits {
		frame[wire.HeaderSize+bit/8] ^= 1 << (bit % 8)
	}
}
