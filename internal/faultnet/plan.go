package faultnet

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/wire"
)

// Action names one fault class a Rule can inject.
type Action string

// The fault vocabulary. Delay and Partition only reorder time — a plan made
// of them alone must leave the training trajectory bit-identical. Corrupt,
// Truncate, and Reset destroy frames or connections and must surface as
// secagg dropouts, straggler timeouts, or crash-restarts downstream.
const (
	// ActionDelay sleeps before forwarding the matched frame (base plus
	// seeded jitter), modeling stragglers and slow links.
	ActionDelay Action = "delay"
	// ActionCorrupt flips Flips payload bits in the matched frame; the
	// receiver's CRC32 check must reject it.
	ActionCorrupt Action = "corrupt"
	// ActionTruncate forwards only a prefix of the matched frame and then
	// closes the connection, modeling a crash mid-send.
	ActionTruncate Action = "truncate"
	// ActionReset drops the matched frame and closes the connection,
	// modeling an abrupt peer crash.
	ActionReset Action = "reset"
	// ActionPartition blocks both directions of the matched link until
	// HealMs elapses; dials across the link are refused while it holds.
	ActionPartition Action = "partition"
)

// MatchAny is the wildcard value for a Rule's Round and Seq fields.
const MatchAny = -1

// Rule matches frames on tagged links and names the fault to inject.
// Links are identified by the node tags fednode supplies through its
// TagNetwork hooks: "cloud", "edge/<e>", "client/<id>". A frame's direction
// is always dialer→listener or listener→dialer, and From/To match the
// frame's own direction, so one rule can target either half of a duplex
// connection.
type Rule struct {
	// From and To match the frame's source and destination tags. A bare
	// "*" matches everything; a trailing "/*" matches a tag class
	// ("client/*"); anything else is exact.
	From string `json:"from"`
	To   string `json:"to"`
	// Type matches the wire message type name ("MaskedUpdate", ...); empty
	// matches every type.
	Type string `json:"type,omitempty"`
	// Round and Seq match the frame header's global round and the payload's
	// group-round sequence; MatchAny (-1) matches all.
	Round int `json:"round"`
	Seq   int `json:"seq"`

	// Action is the fault to inject when the rule fires.
	Action Action `json:"action"`
	// Prob fires the rule on each matched frame with this probability,
	// drawn from the link's seeded RNG (default 1: every match fires).
	Prob float64 `json:"prob,omitempty"`
	// Count caps how many times this rule fires per link direction
	// (0 = unlimited).
	Count int `json:"count,omitempty"`

	// DelayMs and JitterMs parameterize ActionDelay: sleep DelayMs plus a
	// seeded uniform draw from [0, JitterMs].
	DelayMs  int `json:"delay_ms,omitempty"`
	JitterMs int `json:"jitter_ms,omitempty"`
	// HealMs parameterizes ActionPartition: the link heals after this long.
	HealMs int `json:"heal_ms,omitempty"`
	// Flips parameterizes ActionCorrupt: payload bits to flip (default 1).
	Flips int `json:"flips,omitempty"`
}

// UnmarshalJSON applies the field defaults a hand-written plan.json expects:
// Round and Seq wildcard to MatchAny, Prob to 1, Flips to 1.
func (r *Rule) UnmarshalJSON(b []byte) error {
	type bare Rule
	a := bare{Round: MatchAny, Seq: MatchAny, Prob: 1, Flips: 1}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*r = Rule(a)
	return nil
}

// withDefaults fills the zero-valued tuning fields of a Go-built rule.
func (r Rule) withDefaults() Rule {
	if r.Prob <= 0 {
		r.Prob = 1
	}
	if r.Flips <= 0 {
		r.Flips = 1
	}
	return r
}

// validate rejects rules the injector cannot execute.
func (r Rule) validate() error {
	switch r.Action {
	case ActionDelay:
		if r.DelayMs <= 0 && r.JitterMs <= 0 {
			return fmt.Errorf("faultnet: delay rule needs delay_ms or jitter_ms")
		}
	case ActionCorrupt, ActionTruncate, ActionReset:
	case ActionPartition:
		if r.HealMs <= 0 {
			return fmt.Errorf("faultnet: partition rule needs heal_ms")
		}
	default:
		return fmt.Errorf("faultnet: unknown action %q", r.Action)
	}
	if r.From == "" || r.To == "" {
		return fmt.Errorf("faultnet: rule needs from and to patterns")
	}
	if r.Type != "" && wireTypeByName(r.Type) == 0 {
		return fmt.Errorf("faultnet: unknown wire type %q", r.Type)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faultnet: prob %g outside [0,1]", r.Prob)
	}
	return nil
}

// matches reports whether the rule applies to one frame on one link
// direction.
func (r Rule) matches(from, to string, typ wire.Type, round, seq int) bool {
	if !matchTag(r.From, from) || !matchTag(r.To, to) {
		return false
	}
	if r.Type != "" && wireTypeByName(r.Type) != typ {
		return false
	}
	if r.Round != MatchAny && r.Round != round {
		return false
	}
	if r.Seq != MatchAny && r.Seq != seq {
		return false
	}
	return true
}

// matchTag implements the three pattern forms: "*", "class/*", exact.
func matchTag(pattern, tag string) bool {
	if pattern == "*" {
		return true
	}
	if class, ok := strings.CutSuffix(pattern, "/*"); ok {
		return strings.HasPrefix(tag, class+"/")
	}
	return pattern == tag
}

// wireTypeByName resolves a wire type name; 0 means unknown.
func wireTypeByName(name string) wire.Type {
	for t := wire.GlobalModel; t <= wire.GlobalAggregate; t++ {
		if t.String() == name {
			return t
		}
	}
	return 0
}

// Plan is one seeded, scripted chaos plan: the fault rules plus the
// recovery policy knobs the scenario runner honors. The same plan and seed
// always inject the same faults in the same per-link order.
type Plan struct {
	// Name identifies the plan in logs and CLI output.
	Name string `json:"name"`
	// Seed drives every probabilistic draw (per-link RNGs are derived from
	// it); the runner may override it from the -seed flag.
	Seed uint64 `json:"seed"`
	// MaxRestarts is the per-client crash-restart budget the scenario
	// runner grants (0: a crashed client stays down).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// RestartBackoffMs is the pause before a crashed client redials.
	RestartBackoffMs int `json:"restart_backoff_ms,omitempty"`
	// Rules are evaluated in order against every frame; all matching rules
	// that fire apply (terminal actions — truncate, reset — stop the scan).
	Rules []Rule `json:"rules"`
}

// Validate checks every rule and applies defaults in place.
func (p *Plan) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("faultnet: plan %q has no rules", p.Name)
	}
	for i := range p.Rules {
		p.Rules[i] = p.Rules[i].withDefaults()
		if err := p.Rules[i].validate(); err != nil {
			return fmt.Errorf("faultnet: plan %q rule %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// DelayOnly reports whether the plan can only reorder time (delay and
// partition rules): such a plan must leave final weights bit-identical to a
// fault-free run, the invariant the scenario runner asserts.
func (p *Plan) DelayOnly() bool {
	for _, r := range p.Rules {
		if r.Action != ActionDelay && r.Action != ActionPartition {
			return false
		}
	}
	return true
}

// LoadPlan reads and validates a JSON plan file.
func LoadPlan(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultnet: read plan: %w", err)
	}
	p := &Plan{}
	if err := json.Unmarshal(b, p); err != nil {
		return nil, fmt.Errorf("faultnet: parse plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
