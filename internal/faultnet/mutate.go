package faultnet

import (
	"repro/internal/stats"
	"repro/internal/wire"
)

// Corruption mutators, shared between the injector's write path and the
// wire fuzz corpus (internal/wire's FuzzDecodeFrame seeds itself from these
// so the fuzzer starts exactly where chaos runs leave off).

// CorruptBits returns a copy of frame with flips payload bits inverted at
// seeded positions. The header (including the CRC of the original payload)
// is left intact, so a strict decoder must fail the checksum — never panic.
// Frames too short to carry a payload are returned unchanged.
func CorruptBits(frame []byte, flips int, rng *stats.RNG) []byte {
	out := append([]byte(nil), frame...)
	if len(out) <= wire.HeaderSize || flips <= 0 {
		return out
	}
	payloadBits := (len(out) - wire.HeaderSize) * 8
	for i := 0; i < flips; i++ {
		bit := rng.IntN(payloadBits)
		out[wire.HeaderSize+bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// TruncateFrame returns a seeded strict prefix of frame that always cuts
// inside the payload (or inside the header for header-only frames), the
// shape a crashed sender leaves on the wire.
func TruncateFrame(frame []byte, rng *stats.RNG) []byte {
	if len(frame) <= 1 {
		return nil
	}
	lo := wire.HeaderSize
	if len(frame) <= wire.HeaderSize {
		lo = 1
	}
	cut := lo + rng.IntN(len(frame)-lo)
	return append([]byte(nil), frame[:cut]...)
}

// frameInfo is the injector's view of one encoded frame: enough header and
// payload structure to match rules without a full decode.
type frameInfo struct {
	typ   wire.Type
	round int
	seq   int
}

// parseFrame inspects p and, when it holds exactly one well-formed frame
// (the invariant wire.Encode's single-Write guarantees), returns its info.
// Anything else — partial writes, foreign bytes — is reported unparsed and
// passes through the injector untouched.
func parseFrame(p []byte) (frameInfo, bool) {
	if len(p) < wire.HeaderSize+8 {
		return frameInfo{}, false
	}
	if uint16(p[0])<<8|uint16(p[1]) != wire.Magic || p[2] != wire.Version {
		return frameInfo{}, false
	}
	typ := wire.Type(p[3])
	if typ < wire.GlobalModel || typ > wire.GlobalAggregate {
		return frameInfo{}, false
	}
	payLen := int(uint32(p[8])<<24 | uint32(p[9])<<16 | uint32(p[10])<<8 | uint32(p[11]))
	if len(p) != wire.HeaderSize+payLen {
		return frameInfo{}, false
	}
	round := int(uint32(p[4])<<24 | uint32(p[5])<<16 | uint32(p[6])<<8 | uint32(p[7]))
	seq := int(uint32(p[16])<<24 | uint32(p[17])<<16 | uint32(p[18])<<8 | uint32(p[19]))
	return frameInfo{typ: typ, round: round, seq: seq}, true
}
