package faultnet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event records one injected fault. Frame is the per-link-direction frame
// index at injection time, which — together with the per-link seeded RNGs —
// makes the log a pure function of (plan, seed): two runs of the same
// seeded plan must produce byte-identical rendered logs.
type Event struct {
	// Link is the frame direction, "from→to" in node tags.
	Link string
	// Frame is the 0-based index of the frame on this link direction.
	Frame int64
	// Action is the fault injected.
	Action Action
	// Type, Round, and Seq describe the matched frame.
	Type  string
	Round int
	Seq   int
	// Detail carries action parameters (delay duration, bits flipped, ...).
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%s frame=%d %s round=%d.%d action=%s %s",
		e.Link, e.Frame, e.Type, e.Round, e.Seq, e.Action, e.Detail)
}

// Log collects injected-fault events from every link goroutine. It is safe
// for concurrent use; reads return deterministically sorted copies.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// add appends one event.
func (l *Log) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Record appends an externally observed event. Harness-driven scenarios
// (no faultnet transport in the loop) use it to publish their replay
// artifact through the same sorted-log rendering contract injected faults
// get, so the byte-identical-replay tests apply unchanged.
func (l *Log) Record(e Event) { l.add(e) }

// Events returns the injected faults sorted by (link, frame, action).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link != out[j].Link {
			return out[i].Link < out[j].Link
		}
		if out[i].Frame != out[j].Frame {
			return out[i].Frame < out[j].Frame
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// Len returns the number of injected faults so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Counts tallies events by action.
func (l *Log) Counts() map[Action]int {
	counts := make(map[Action]int)
	for _, e := range l.Events() {
		counts[e.Action]++
	}
	return counts
}

// String renders the sorted log, one event per line — the replay artifact
// the determinism tests compare byte-for-byte.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
