package scenarios_test

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/faultnet/scenarios"
	"repro/internal/metrics"
)

// snapshotStable lists the scenarios whose *entire* counter snapshot —
// frames, bytes, secagg ops, dropouts — is deterministic across runs once
// timing histograms are masked. client-crash-restart is excluded: the
// round boundary at which the edge adopts the rejoined client depends on
// when the redial lands, so its wire-frame totals may legitimately differ
// between runs even though its fault log cannot.
var snapshotStable = map[string]bool{
	"corrupt-frames":        true,
	"edge-partition-heal":   true,
	"straggler-storm":       true,
	"straggler-storm-async": true,
	"slow-links":            true,
	"mixed":                 true,
}

// TestChaosSuite runs every named scenario twice. The first run proves the
// recovery invariants (inside scenarios.Run); the second proves replay
// determinism: the injected-fault event log must be byte-identical, and for
// snapshot-stable scenarios the full masked metrics snapshot must be too.
func TestChaosSuite(t *testing.T) {
	for _, sc := range scenarios.All() {
		t.Run(sc.Name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			r1, err := scenarios.Run(sc, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := scenarios.Run(sc, t.Logf)
			if err != nil {
				t.Fatal(err)
			}

			if r1.Log.Len() == 0 {
				t.Fatal("scenario injected no faults: the plan matched nothing")
			}
			if l1, l2 := r1.Log.String(), r2.Log.String(); l1 != l2 {
				t.Fatalf("fault event log differs between two seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", l1, l2)
			}
			if snapshotStable[sc.Name] {
				s1 := metrics.MaskTimings(r1.Registry.Snapshot())
				s2 := metrics.MaskTimings(r2.Registry.Snapshot())
				if s1 != s2 {
					t.Fatalf("masked metrics snapshot differs between two seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
				}
			}
			waitGoroutines(t, before)
		})
	}
}

// TestDelayOnlyScenariosRanBaseline pins that the bitwise-weights check is
// actually exercised: the delay-only scenarios must have produced a
// fault-free baseline (Run compares the vectors bit for bit and fails on
// any difference).
func TestDelayOnlyScenariosRanBaseline(t *testing.T) {
	for _, name := range []string{"edge-partition-heal", "slow-links"} {
		sc, ok := scenarios.ByName(name)
		if !ok {
			t.Fatalf("scenario %q missing from suite", name)
		}
		r, err := scenarios.Run(sc, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		if r.FaultFreeParams == nil {
			t.Fatalf("%s: no fault-free baseline was run, bitwise check skipped", name)
		}
	}
}

// TestFromPlanFile drives the felnode -chaos path: a hand-written plan.json
// is loaded, validated, and run with the universal invariants (including
// the delay-only bitwise check, since this plan only adds latency).
func TestFromPlanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	planJSON := `{
		"name": "file-plan",
		"seed": 99,
		"rules": [
			{"from": "client/*", "to": "edge/*", "type": "MaskedUpdate",
			 "action": "delay", "delay_ms": 1, "jitter_ms": 2, "prob": 0.5}
		]
	}`
	if err := os.WriteFile(path, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err := faultnet.LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := scenarios.Run(scenarios.FromPlan(plan), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "file-plan" {
		t.Fatalf("scenario took name %q, want the plan's name", r.Name)
	}
	if r.FaultFreeParams == nil {
		t.Fatal("delay-only file plan skipped the bitwise baseline check")
	}
	if r.Log.Len() == 0 {
		t.Fatal("file plan injected nothing")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := scenarios.ByName("no-such-scenario"); ok {
		t.Fatal("ByName invented a scenario")
	}
	if len(scenarios.All()) < 5 {
		t.Fatalf("suite has %d scenarios, want at least 5", len(scenarios.All()))
	}
}

// waitGoroutines fails the test if the goroutine count does not return to
// (near) its pre-run level: a leaked edge accept loop or client supervisor
// would hold it up.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
