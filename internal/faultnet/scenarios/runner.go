// Package scenarios executes named chaos plans against a full loopback
// federation: a cloud, edge servers, and supervised clients, all in one
// process, talking through a faultnet-wrapped in-memory transport. Each
// scenario pairs a fault plan with the recovery invariants it must uphold —
// exact dropout/straggler/decode-error counts, crash-restart adoption,
// byte-identical fault logs across replays, and, for plans that only
// reshape time, bit-identical final weights against a fault-free run.
//
// Plans target links by node tag. One design rule keeps replays
// byte-comparable: rules should only match links with a single sequential
// writer (client→edge, cloud→edge, edge→client), where the frame order is
// fixed by the protocol. The edge→cloud aggregate link is written by
// concurrent group runners through a mutex, so its frame order is
// scheduling-dependent — a rule matching it would still fire
// deterministically per frame index, but the (round, group) an event
// attaches to would vary run to run.
package scenarios

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultnet"
	"repro/internal/fednode"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Context is what a scenario sees when it builds its plan: the formed
// groups and the job configuration, so rules can target specific clients
// ("the first member of the second group of size ≥ 3") deterministically —
// formation is seeded, so the same targets come out every run.
type Context struct {
	Sys    *core.System
	Groups []*grouping.Group
	Cfg    *fednode.JobConfig
}

// Targets returns the first member's client id from each of the first n
// groups of size >= minSize; fewer when formation produced fewer such
// groups.
func (c *Context) Targets(n, minSize int) []int {
	var ids []int
	for _, g := range c.Groups {
		if len(ids) == n {
			break
		}
		if g.Size() >= minSize {
			ids = append(ids, g.Clients[0].ID)
		}
	}
	return ids
}

// Scenario is one named chaos plan plus the invariants it must uphold.
type Scenario struct {
	// Name identifies the scenario in the registry and the felnode CLI.
	Name string
	// About is a one-line description.
	About string
	// Tune adjusts the base job configuration (timeouts, rounds) before the
	// plan is built. May be nil.
	Tune func(cfg *fednode.JobConfig)
	// Plan builds the fault plan against the formed system.
	Plan func(ctx *Context) *faultnet.Plan
	// Expect checks scenario-specific invariants on the finished run. May
	// be nil (the universal invariants still apply).
	Expect func(r *Result) error
	// NoBaseline opts out of the delay-only bitwise-weights check. Needed
	// when a plan is technically delay-only but the delays are scripted to
	// exceed the straggler deadline: past the deadline a delay is
	// semantically a dropout, and the trajectory is supposed to change.
	NoBaseline bool
	// RunFunc, when non-nil, replaces the loopback federation entirely: the
	// scenario drives its own harness and synthesizes the Result (report,
	// log, registry) itself. Tune and Plan are ignored, and so are the
	// faultnet universal invariants — the injected-fault/registry agreement
	// check is meaningless for a run with no faultnet transport in the
	// loop. Expect still runs, and the suite's replay test still compares
	// the rendered Log byte for byte, so a RunFunc scenario must fill Log
	// deterministically (faultnet.Log.Record).
	RunFunc func(logf func(format string, args ...any)) (*Result, error)
}

// Casualty is a client whose supervisor gave up: its process error after
// the restart budget was spent. Scenarios decide whether casualties were
// part of the script.
type Casualty struct {
	Client int
	Err    error
}

// Result is one finished chaos run.
type Result struct {
	Name string
	// Report is the cloud's job report.
	Report *fednode.Report
	// Log is the injected-fault event log; its rendered form is the replay
	// artifact two runs of the same plan must reproduce byte-for-byte.
	Log *faultnet.Log
	// Registry holds every fel_* counter the run produced.
	Registry *metrics.Registry
	// Casualties lists clients that died for good; Restarts counts
	// crash-restart attempts the supervisors made.
	Casualties []Casualty
	Restarts   int
	// FaultFreeParams is the final parameter vector of the fault-free
	// baseline run, set only for delay-only plans.
	FaultFreeParams []float64
}

// Counter reads one labeled counter from the run's registry.
func (r *Result) Counter(name string, labels ...metrics.Label) int64 {
	return r.Registry.CounterValue(name, labels...)
}

// baseSystem builds the loopback federation population: two edges, a
// seeded synthetic classification task, and a small MLP — the same shape
// cmd/felnode's loopback mode uses, sized so CoV grouping yields several
// groups of three or more per edge.
func baseSystem(numClients int, seed uint64) *core.System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: 0.5,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges: 2,
		TestSize: 200,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{16}, 4, s)
		},
		ModelSeed: 7,
	})
}

// baseJobConfig is the job every scenario starts from: small and fast, with
// tight dial backoff so supervised restarts converge quickly.
func baseJobConfig() fednode.JobConfig {
	return fednode.JobConfig{
		GlobalRounds: 3, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		Grouping: grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling: sampling.ESRCoV,
		Weights:  sampling.Biased,
		Seed:     42,
		// Generous enough for injected partitions and delays, short enough
		// that a genuinely wedged run fails fast.
		RoundTimeout: 20 * time.Second,
		DialAttempts: 6, DialBackoff: 5 * time.Millisecond,
	}
}

// Run executes one scenario and verifies its invariants. logf (may be nil)
// receives progress lines. The returned Result is valid only when err is
// nil.
func Run(sc Scenario, logf func(format string, args ...any)) (*Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if sc.RunFunc != nil {
		res, err := sc.RunFunc(logf)
		if err != nil {
			return nil, fmt.Errorf("scenarios: %s: %w", sc.Name, err)
		}
		res.Name = sc.Name
		if sc.Expect != nil {
			if err := sc.Expect(res); err != nil {
				return nil, fmt.Errorf("scenarios: %s: %w", sc.Name, err)
			}
		}
		logf("scenario %s: ok (%d events, %d rounds)", sc.Name, res.Log.Len(), res.Report.RoundsRun)
		return res, nil
	}
	sys := baseSystem(24, 1)
	cfg := baseJobConfig()
	if sc.Tune != nil {
		sc.Tune(&cfg)
	}

	// Pin formation and selection: every group trains every round, so fault
	// targets are deterministically in play and replays line up.
	groups := grouping.FormAll(cfg.Grouping, sys.Edges, sys.Classes, stats.NewRNG(cfg.Seed).Split(1))
	if len(groups) == 0 {
		return nil, fmt.Errorf("scenarios: formation produced no groups")
	}
	all := make([]int, len(groups))
	for i := range groups {
		all[i] = i
	}
	sel := make([][]int, cfg.GlobalRounds)
	for t := range sel {
		sel[t] = all
	}
	cfg.Groups = groups
	cfg.FixedSelection = sel

	plan := sc.Plan(&Context{Sys: sys, Groups: groups, Cfg: &cfg})
	if err := plan.Validate(); err != nil {
		return nil, err
	}

	// Delay-only plans must not change the trajectory: run the identical
	// job fault-free first and keep its weights for the bitwise check.
	var baselineParams []float64
	if plan.DelayOnly() && !sc.NoBaseline {
		logf("scenario %s: running fault-free baseline", sc.Name)
		base := cfg
		base.Meter = fednode.NewMeter(metrics.New())
		rep, err := fednode.RunJob(fednode.NewMemNetwork(), sys, base, "")
		if err != nil {
			return nil, fmt.Errorf("scenarios: fault-free baseline: %w", err)
		}
		baselineParams = rep.Params
	}

	reg := metrics.New()
	meter := fednode.NewMeter(reg)
	cfg.Meter = meter
	fnet := faultnet.Wrap(fednode.NewMemNetwork(), plan, reg)

	cloudLn, err := fnet.ListenAs("cloud", "")
	if err != nil {
		return nil, fmt.Errorf("scenarios: cloud listen: %w", err)
	}
	defer closeQuiet(cloudLn)
	edgeLns := make([]net.Listener, len(sys.Edges))
	edgeAddrs := make([]string, len(sys.Edges))
	for e := range sys.Edges {
		ln, err := fnet.ListenAs(fmt.Sprintf("edge/%d", e), "")
		if err != nil {
			return nil, fmt.Errorf("scenarios: edge %d listen: %w", e, err)
		}
		defer closeQuiet(ln)
		edgeLns[e] = ln
		edgeAddrs[e] = ln.Addr().String()
	}

	// Edges must survive every scripted fault; their errors fail the run.
	edgeErrs := make(chan error, len(sys.Edges))
	var edgeWG sync.WaitGroup
	for e := range sys.Edges {
		edgeWG.Add(1)
		go func(e int) {
			defer edgeWG.Done()
			if err := fednode.NewEdge(e, sys, cfg, meter).Run(fnet, edgeLns[e], cloudLn.Addr().String()); err != nil {
				edgeErrs <- fmt.Errorf("edge %d: %w", e, err)
			}
		}(e)
	}

	// Clients run supervised: a crash consumes one restart from the plan's
	// budget and redials (the edge replays its assignment and adopts it at
	// the next round boundary); a client that spends the budget becomes a
	// casualty for the scenario to judge.
	var restarts atomic.Int64
	casualtyCh := make(chan Casualty, len(sys.Clients))
	var clientWG sync.WaitGroup
	for e, clients := range sys.Edges {
		for _, cl := range clients {
			clientWG.Add(1)
			go func(id int, addr string) {
				defer clientWG.Done()
				for attempt := 0; ; attempt++ {
					_, err := fednode.NewClient(id, sys, cfg, meter).Run(fnet, addr)
					if err == nil {
						return
					}
					if attempt >= plan.MaxRestarts {
						casualtyCh <- Casualty{Client: id, Err: err}
						return
					}
					restarts.Add(1)
					logf("scenario %s: client %d restarting after: %v", sc.Name, id, err)
					time.Sleep(time.Duration(plan.RestartBackoffMs) * time.Millisecond)
				}
			}(cl.ID, edgeAddrs[e])
		}
	}

	logf("scenario %s: running plan %q over %d clients", sc.Name, plan.Name, len(sys.Clients))
	rep, cloudErr := fednode.NewCloud(sys, cfg, meter).Run(cloudLn)
	edgeWG.Wait()
	// Edges are done; closing the listeners unwedges any client supervisor
	// still redialing a finished job.
	closeQuiet(cloudLn)
	for _, ln := range edgeLns {
		closeQuiet(ln)
	}
	clientWG.Wait()
	close(edgeErrs)
	close(casualtyCh)

	if cloudErr != nil {
		return nil, fmt.Errorf("scenarios: %s: cloud: %w", sc.Name, cloudErr)
	}
	for err := range edgeErrs {
		return nil, fmt.Errorf("scenarios: %s: %w", sc.Name, err)
	}

	res := &Result{
		Name:            sc.Name,
		Report:          rep,
		Log:             fnet.Log(),
		Registry:        reg,
		Restarts:        int(restarts.Load()),
		FaultFreeParams: baselineParams,
	}
	for c := range casualtyCh {
		res.Casualties = append(res.Casualties, c)
	}
	if err := verify(sc, plan, res); err != nil {
		return nil, err
	}
	logf("scenario %s: ok (%d faults injected, %d rounds, %d casualties, %d restarts)",
		sc.Name, res.Log.Len(), rep.RoundsRun, len(res.Casualties), res.Restarts)
	return res, nil
}

// verify checks the universal invariants every scenario shares, then the
// scenario's own.
func verify(sc Scenario, plan *faultnet.Plan, r *Result) error {
	if len(r.Report.Rounds) == 0 {
		return fmt.Errorf("scenarios: %s: report has no rounds", sc.Name)
	}
	if r.Report.RoundsRun != r.Report.Rounds[len(r.Report.Rounds)-1].Round+1 {
		return fmt.Errorf("scenarios: %s: round accounting inconsistent", sc.Name)
	}
	// Every injected fault must land in both the log and the registry, in
	// equal measure: the log is the replay artifact, the counters are the
	// operator's view, and they must not drift.
	for action, n := range r.Log.Counts() {
		got := r.Counter("fel_faultnet_injected_total", metrics.L("action", string(action)))
		if got != int64(n) {
			return fmt.Errorf("scenarios: %s: log has %d %s events but registry counted %d", sc.Name, n, action, got)
		}
	}
	// A plan that only reshapes time must leave the trajectory untouched:
	// final weights bit-identical to the fault-free baseline.
	if r.FaultFreeParams != nil {
		if len(r.FaultFreeParams) != len(r.Report.Params) {
			return fmt.Errorf("scenarios: %s: param dims differ from baseline: %d vs %d",
				sc.Name, len(r.Report.Params), len(r.FaultFreeParams))
		}
		for j := range r.Report.Params {
			if math.Float64bits(r.Report.Params[j]) != math.Float64bits(r.FaultFreeParams[j]) {
				return fmt.Errorf("scenarios: %s: delay-only plan changed weights at param %d: %x vs %x",
					sc.Name, j, math.Float64bits(r.Report.Params[j]), math.Float64bits(r.FaultFreeParams[j]))
			}
		}
	}
	if sc.Expect != nil {
		if err := sc.Expect(r); err != nil {
			return fmt.Errorf("scenarios: %s: %w", sc.Name, err)
		}
	}
	return nil
}

// closeQuiet closes c on a cleanup path where the error changes nothing.
func closeQuiet(c interface{ Close() error }) {
	//lint:ignore dropped-error cleanup-path close; the listener is being abandoned either way
	c.Close()
}
