package scenarios

import (
	"fmt"
	"time"

	"repro/internal/faultnet"
	"repro/internal/fednode"
	"repro/internal/metrics"
)

// anyRule returns a rule matching every round and group-round sequence —
// the Go-side equivalent of a plan.json rule that omits round and seq.
func anyRule(r faultnet.Rule) faultnet.Rule {
	r.Round, r.Seq = faultnet.MatchAny, faultnet.MatchAny
	return r
}

// clientTag formats a client's link tag.
func clientTag(id int) string { return fmt.Sprintf("client/%d", id) }

// needTargets fails the scenario early when formation produced fewer
// distinct big-enough groups than the plan scripts faults for.
func needTargets(ctx *Context, n, minSize int) ([]int, error) {
	ids := ctx.Targets(n, minSize)
	if len(ids) < n {
		return nil, fmt.Errorf("scenarios: need %d groups of size >= %d, formation gave %d", n, minSize, len(ids))
	}
	return ids, nil
}

// mustTargets is needTargets for plan builders, which cannot return an
// error; the runner surfaces the panic-free empty plan as a validation
// failure instead, so we encode the shortfall as an invalid plan.
func mustTargets(ctx *Context, n, minSize int) []int {
	ids, err := needTargets(ctx, n, minSize)
	if err != nil {
		return nil
	}
	return ids
}

// All returns the named chaos suite in a stable order.
func All() []Scenario {
	return []Scenario{
		corruptFrames(),
		clientCrashRestart(),
		edgePartitionHeal(),
		stragglerStorm(),
		stragglerStormAsync(),
		slowLinks(),
		mixed(),
	}
}

// ByName looks a scenario up in the suite.
func ByName(name string) (Scenario, bool) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// FromPlan wraps an externally supplied plan (felnode -chaos plan.json) in
// a scenario with only the universal invariants: the job completes, every
// injected fault is accounted, and a delay-only plan leaves the weights
// bit-identical.
func FromPlan(plan *faultnet.Plan) Scenario {
	name := plan.Name
	if name == "" {
		name = "custom-plan"
	}
	return Scenario{
		Name:  name,
		About: "externally supplied chaos plan",
		Plan:  func(*Context) *faultnet.Plan { return plan },
	}
}

// corruptFrames flips payload bits in one masked update from each of two
// clients in distinct groups. The CRC must catch both, the edges must
// convert them into secure-aggregation dropouts, and the counters must
// match the injection log exactly.
func corruptFrames() Scenario {
	return Scenario{
		Name:  "corrupt-frames",
		About: "bit-flip one masked update in each of two groups; CRC rejects, secagg recovers",
		Plan: func(ctx *Context) *faultnet.Plan {
			rules := make([]faultnet.Rule, 0, 2)
			for _, id := range mustTargets(ctx, 2, 3) {
				rules = append(rules, anyRule(faultnet.Rule{
					From: clientTag(id), To: "edge/*", Type: "MaskedUpdate",
					Action: faultnet.ActionCorrupt, Count: 1, Flips: 3,
				}))
			}
			return &faultnet.Plan{Name: "corrupt-frames", Seed: 7, Rules: rules}
		},
		Expect: func(r *Result) error {
			if n := r.Log.Counts()[faultnet.ActionCorrupt]; n != 2 {
				return fmt.Errorf("injected %d corruptions, want 2", n)
			}
			if got := r.Counter("fel_wire_decode_errors_total", metrics.L("reason", "checksum")); got != 2 {
				return fmt.Errorf("counted %d checksum decode errors, want exactly the 2 injected", got)
			}
			if r.Report.Dropouts != 2 {
				return fmt.Errorf("%d dropouts, want 2 (one per corrupted client)", r.Report.Dropouts)
			}
			if r.Report.Recoveries < 2 {
				return fmt.Errorf("%d recoveries, want >= 2 (each wounded group reveals shares)", r.Report.Recoveries)
			}
			if len(r.Casualties) != 2 || r.Restarts != 0 {
				return fmt.Errorf("%d casualties / %d restarts, want 2 / 0: corrupted clients die for good", len(r.Casualties), r.Restarts)
			}
			if got := r.Counter("fel_fednode_straggler_timeouts_total"); got != 0 {
				return fmt.Errorf("%d straggler timeouts on a corruption-only plan", got)
			}
			return nil
		},
	}
}

// clientCrashRestart resets one client's connection mid-round-0. The
// supervisor redials within the restart budget; the edge must replay the
// assignment, adopt the rejoined connection at the next round boundary, and
// finish with the client back in its seat.
func clientCrashRestart() Scenario {
	return Scenario{
		Name:  "client-crash-restart",
		About: "kill one client's connection in round 0; it restarts, rejoins, and finishes the job",
		Plan: func(ctx *Context) *faultnet.Plan {
			targets := mustTargets(ctx, 1, 3)
			rules := make([]faultnet.Rule, 0, 1)
			for _, id := range targets {
				rules = append(rules, faultnet.Rule{
					From: clientTag(id), To: "edge/*", Type: "MaskedUpdate",
					Round: 0, Seq: faultnet.MatchAny,
					Action: faultnet.ActionReset, Count: 1,
				})
			}
			return &faultnet.Plan{
				Name: "client-crash-restart", Seed: 11,
				MaxRestarts: 2, RestartBackoffMs: 10,
				Rules: rules,
			}
		},
		Expect: func(r *Result) error {
			if n := r.Log.Counts()[faultnet.ActionReset]; n != 1 {
				return fmt.Errorf("injected %d resets, want 1", n)
			}
			if r.Report.Dropouts != 1 {
				return fmt.Errorf("%d dropouts, want 1 (the round-0 crash)", r.Report.Dropouts)
			}
			if r.Restarts < 1 {
				return fmt.Errorf("supervisor recorded %d restarts, want >= 1", r.Restarts)
			}
			if got := r.Counter("fel_fednode_rejoins_total"); got < 1 {
				return fmt.Errorf("edge adopted %d rejoins, want >= 1", got)
			}
			if len(r.Casualties) != 0 {
				return fmt.Errorf("%d casualties, want 0: the crashed client must rejoin and finish (%v)", len(r.Casualties), r.Casualties)
			}
			return nil
		},
	}
}

// edgePartitionHeal partitions the cloud↔edge/1 link when the round-1
// global model is in flight and heals it 150ms later. A partition only
// reshapes time, so beyond completing, the run must reproduce the
// fault-free weights bit for bit (checked universally for delay-only
// plans).
func edgePartitionHeal() Scenario {
	return Scenario{
		Name:  "edge-partition-heal",
		About: "partition cloud↔edge/1 across the round-1 broadcast, heal after 150ms, weights bit-identical",
		Plan: func(*Context) *faultnet.Plan {
			return &faultnet.Plan{
				Name: "edge-partition-heal", Seed: 13,
				Rules: []faultnet.Rule{{
					From: "cloud", To: "edge/1", Type: "GlobalModel",
					Round: 1, Seq: faultnet.MatchAny,
					Action: faultnet.ActionPartition, HealMs: 150, Count: 1,
				}},
			}
		},
		Expect: func(r *Result) error {
			if n := r.Log.Counts()[faultnet.ActionPartition]; n != 1 {
				return fmt.Errorf("injected %d partitions, want 1", n)
			}
			if r.Report.Dropouts != 0 || len(r.Casualties) != 0 {
				return fmt.Errorf("healed partition caused %d dropouts / %d casualties, want none", r.Report.Dropouts, len(r.Casualties))
			}
			return nil
		},
	}
}

// stragglerStorm delays one masked update from each of two groups far past
// the straggler deadline. Each miss must be classified as a *timeout* — not
// a generic I/O error — and counted once as a straggler and once as a
// dropout; the groups recover via share reveal.
func stragglerStorm() Scenario {
	return Scenario{
		Name:  "straggler-storm",
		About: "two clients straggle past the deadline; edges classify timeouts and recover",
		Tune: func(cfg *fednode.JobConfig) {
			// Short enough to keep the scenario quick, long enough that
			// honest clients never miss it even under the race detector.
			cfg.StragglerTimeout = 600 * time.Millisecond
		},
		Plan: func(ctx *Context) *faultnet.Plan {
			rules := make([]faultnet.Rule, 0, 2)
			for _, id := range mustTargets(ctx, 2, 3) {
				rules = append(rules, anyRule(faultnet.Rule{
					From: clientTag(id), To: "edge/*", Type: "MaskedUpdate",
					Action: faultnet.ActionDelay, DelayMs: 1500, Count: 1,
				}))
			}
			return &faultnet.Plan{Name: "straggler-storm", Seed: 17, Rules: rules}
		},
		// Technically delay-only, but a delay past the straggler deadline is
		// a dropout by design — the trajectory is supposed to change.
		NoBaseline: true,
		Expect: func(r *Result) error {
			if n := r.Log.Counts()[faultnet.ActionDelay]; n != 2 {
				return fmt.Errorf("injected %d delays, want 2", n)
			}
			if got := r.Counter("fel_fednode_straggler_timeouts_total"); got != 2 {
				return fmt.Errorf("counted %d straggler timeouts, want exactly the 2 injected", got)
			}
			if got := r.Counter("fel_wire_decode_errors_total", metrics.L("reason", "timeout")); got != 2 {
				return fmt.Errorf("counted %d timeout decode errors, want 2: deadline misses must classify as timeouts", got)
			}
			if r.Report.Dropouts != 2 {
				return fmt.Errorf("%d dropouts, want 2", r.Report.Dropouts)
			}
			if len(r.Casualties) != 2 {
				return fmt.Errorf("%d casualties, want 2: stragglers are cut off and die", len(r.Casualties))
			}
			return nil
		},
	}
}

// slowLinks adds small seeded latency and jitter to client uploads and
// global-model broadcasts — all far below the straggler deadline. Nothing
// may be dropped, and the final weights must match the fault-free run bit
// for bit.
func slowLinks() Scenario {
	return Scenario{
		Name:  "slow-links",
		About: "jittered sub-deadline latency everywhere; zero dropouts, weights bit-identical",
		Plan: func(*Context) *faultnet.Plan {
			return &faultnet.Plan{
				Name: "slow-links", Seed: 19,
				Rules: []faultnet.Rule{
					anyRule(faultnet.Rule{
						From: "client/*", To: "edge/*", Type: "MaskedUpdate",
						Action: faultnet.ActionDelay, DelayMs: 1, JitterMs: 3, Prob: 0.5,
					}),
					anyRule(faultnet.Rule{
						From: "cloud", To: "edge/*", Type: "GlobalModel",
						Action: faultnet.ActionDelay, DelayMs: 2, JitterMs: 2,
					}),
				},
			}
		},
		Expect: func(r *Result) error {
			if n := r.Log.Counts()[faultnet.ActionDelay]; n == 0 {
				return fmt.Errorf("no delays injected: the plan matched nothing")
			}
			if r.Report.Dropouts != 0 || len(r.Casualties) != 0 {
				return fmt.Errorf("sub-deadline latency caused %d dropouts / %d casualties", r.Report.Dropouts, len(r.Casualties))
			}
			if got := r.Counter("fel_fednode_straggler_timeouts_total"); got != 0 {
				return fmt.Errorf("%d straggler timeouts under sub-deadline latency", got)
			}
			return nil
		},
	}
}

// mixed layers one corruption, one abrupt crash, background latency, and a
// healed partition in a single run — the kitchen-sink plan. The job must
// still complete all rounds with exactly the two scripted losses.
func mixed() Scenario {
	return Scenario{
		Name:  "mixed",
		About: "corruption + crash + latency + healed partition in one run",
		Plan: func(ctx *Context) *faultnet.Plan {
			targets := mustTargets(ctx, 3, 3)
			var rules []faultnet.Rule
			if len(targets) == 3 {
				rules = append(rules,
					anyRule(faultnet.Rule{
						From: clientTag(targets[0]), To: "edge/*", Type: "MaskedUpdate",
						Action: faultnet.ActionCorrupt, Count: 1, Flips: 5,
					}),
					faultnet.Rule{
						From: clientTag(targets[1]), To: "edge/*", Type: "MaskedUpdate",
						Round: 1, Seq: faultnet.MatchAny,
						Action: faultnet.ActionReset, Count: 1,
					},
				)
			}
			rules = append(rules,
				anyRule(faultnet.Rule{
					From: "client/*", To: "edge/*", Type: "MaskedUpdate",
					Action: faultnet.ActionDelay, DelayMs: 1, JitterMs: 2, Prob: 0.3,
				}),
				faultnet.Rule{
					From: "cloud", To: "edge/0", Type: "GlobalModel",
					Round: 1, Seq: faultnet.MatchAny,
					Action: faultnet.ActionPartition, HealMs: 100, Count: 1,
				},
			)
			return &faultnet.Plan{Name: "mixed", Seed: 23, Rules: rules}
		},
		Expect: func(r *Result) error {
			counts := r.Log.Counts()
			if counts[faultnet.ActionCorrupt] != 1 || counts[faultnet.ActionReset] != 1 || counts[faultnet.ActionPartition] != 1 {
				return fmt.Errorf("injection counts %v, want exactly 1 corrupt + 1 reset + 1 partition", counts)
			}
			if got := r.Counter("fel_wire_decode_errors_total", metrics.L("reason", "checksum")); got != 1 {
				return fmt.Errorf("counted %d checksum decode errors, want 1", got)
			}
			if r.Report.Dropouts != 2 {
				return fmt.Errorf("%d dropouts, want 2 (corrupted + reset clients)", r.Report.Dropouts)
			}
			if len(r.Casualties) != 2 {
				return fmt.Errorf("%d casualties, want the 2 scripted losses", len(r.Casualties))
			}
			return nil
		},
	}
}
