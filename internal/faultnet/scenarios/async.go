package scenarios

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faultnet"
	"repro/internal/fednode"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/sampling"
)

// asyncScenarioConfig is the shared job the async chaos runs under: the
// same shape as baseJobConfig, but driven through core.Train directly so
// the aggregation mode (and its logical clock) is in play. DropoutProb is
// zero on purpose — with no dropouts every dispatched update must arrive,
// which is what makes the fold accounting closed-form.
func asyncScenarioConfig(reg *metrics.Registry, mode async.Config) core.Config {
	return core.Config{
		GlobalRounds: 3, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 2,
		Grouping:    grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:    sampling.ESRCoV,
		Weights:     sampling.Biased,
		Seed:        42,
		CostProfile: cost.CIFARProfile(),
		CostOps:     cost.DefaultOps(),
		MaxParallel: 2,
		Metrics:     reg,
		Async:       mode,
	}
}

// asyncReport shapes a core.Result into the fednode.Report the chaos
// harness prints and verifies.
func asyncReport(res *core.Result) *fednode.Report {
	rep := &fednode.Report{
		FinalAccuracy: res.FinalAccuracy,
		FinalLoss:     res.FinalLoss,
		Params:        res.Params,
		RoundsRun:     res.RoundsRun,
		Dropouts:      res.Dropouts,
	}
	for _, r := range res.Records {
		rep.Rounds = append(rep.Rounds, fednode.RoundStat{
			Round: r.Round, Accuracy: r.Accuracy, Loss: r.Loss,
		})
	}
	return rep
}

// recordArrivals republishes a run's arrival log through the faultnet log,
// one event per arrival-log entry, tagged with the mode so the buffered
// and semi-sync halves of the run stay distinguishable in the rendered
// artifact. Frame is the position in the (deterministic) arrival log, so
// the sorted rendering preserves the replay order exactly.
func recordArrivals(log *faultnet.Log, mode async.Mode, events []async.Event) {
	for i, e := range events {
		log.Record(faultnet.Event{
			Link:   fmt.Sprintf("%s/group/%d→cloud", mode, e.Group),
			Frame:  int64(i),
			Action: faultnet.Action(e.Kind.String()),
			Type:   "AsyncUpdate",
			Round:  e.Round,
			Seq:    e.Stale,
			Detail: fmt.Sprintf("client=%d tick=%d stale=%d", e.Client, e.Tick, e.Stale),
		})
	}
}

// sumFlushFolds totals the per-flush fold counts (Flush events carry the
// number of updates folded in Stale).
func sumFlushFolds(events []async.Event) int {
	total := 0
	for _, e := range events {
		if e.Kind == async.Flush {
			total += e.Stale
		}
	}
	return total
}

// stragglerStormAsync prices the synchronous barrier against buffered and
// semi-sync aggregation under the straggler-storm delay model — same
// federation, same training seeds, same per-dispatch delay draws. The
// invariants are exact, not statistical: with zero dropout every arrival
// folds exactly once (Σ flush folds == arrivals), semi-sync's clock is
// closed-form (T·K·D), carryover/late counts agree between the result, the
// arrival log, and the fel_async_* counters, and both async modes finish in
// strictly fewer logical ticks than the sync barrier.
func stragglerStormAsync() Scenario {
	return Scenario{
		Name:  "straggler-storm-async",
		About: "buffered + semi-sync vs the sync barrier under straggler delays: exact fold/carryover accounting, strictly fewer ticks",
		RunFunc: func(logf func(format string, args ...any)) (*Result, error) {
			sys := baseSystem(24, 1)
			storm := async.StragglerStorm()

			logf("straggler-storm-async: pricing the synchronous barrier")
			syncRes := core.Train(sys, asyncScenarioConfig(nil, async.Config{Delays: storm}))
			if syncRes.LogicalTicks <= 0 {
				return nil, fmt.Errorf("sync run priced no logical ticks")
			}

			logf("straggler-storm-async: buffered run (alpha=0.5, frac=0.5)")
			reg := metrics.New()
			bufRes := core.Train(sys, asyncScenarioConfig(reg, async.Config{
				Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5, Delays: storm,
			}))

			const deadline = 30
			logf("straggler-storm-async: semi-sync run (deadline=%d)", deadline)
			semiReg := metrics.New()
			semiRes := core.Train(sys, asyncScenarioConfig(semiReg, async.Config{
				Mode: async.SemiSync, Alpha: 0.5, DeadlineTicks: deadline, Delays: storm,
			}))

			// Exact fold accounting: no dropouts, so every event in either
			// log that arrived in time is folded exactly once.
			for _, run := range []struct {
				name string
				res  *core.Result
			}{{"buffered", bufRes}, {"semisync", semiRes}} {
				counts := run.res.ArrivalLog.Counts()
				if counts[async.Drop] != 0 || run.res.Dropouts != 0 {
					return nil, fmt.Errorf("%s: dropouts with DropoutProb=0", run.name)
				}
				if folds := sumFlushFolds(run.res.ArrivalLog.Events()); folds != counts[async.Arrive] {
					return nil, fmt.Errorf("%s: %d folds for %d arrivals; every arrival must fold exactly once",
						run.name, folds, counts[async.Arrive])
				}
			}

			// The buffered run must actually exercise staleness (a partial
			// buffer means later flushes fold lagged dispatches).
			maxStale := 0
			for _, e := range bufRes.ArrivalLog.Events() {
				if e.Kind == async.Arrive && e.Stale > maxStale {
					maxStale = e.Stale
				}
			}
			if maxStale == 0 {
				return nil, fmt.Errorf("buffered run observed no staleness; BufferFrac=0.5 should lag some dispatches")
			}

			// Semi-sync exactness: closed-form clock and carryover/late
			// agreement across result, arrival log, and counters.
			semiCounts := semiRes.ArrivalLog.Counts()
			wantTicks := int64(semiRes.RoundsRun) * 2 * deadline
			if semiRes.LogicalTicks != wantTicks {
				return nil, fmt.Errorf("semisync clock %d ticks, want exactly T·K·D = %d", semiRes.LogicalTicks, wantTicks)
			}
			if semiRes.Carryovers == 0 {
				return nil, fmt.Errorf("semisync: no carryovers under straggler delays; deadline %d should be missed", deadline)
			}
			if semiRes.Carryovers != semiCounts[async.Carry] {
				return nil, fmt.Errorf("semisync: result counts %d carryovers, log %d", semiRes.Carryovers, semiCounts[async.Carry])
			}
			if semiRes.LateDrops != semiCounts[async.Late] {
				return nil, fmt.Errorf("semisync: result counts %d late drops, log %d", semiRes.LateDrops, semiCounts[async.Late])
			}
			if got := semiReg.CounterValue("fel_async_carryover_total"); got != int64(semiRes.Carryovers) {
				return nil, fmt.Errorf("semisync: fel_async_carryover_total = %d, want %d", got, semiRes.Carryovers)
			}
			if got := semiReg.CounterValue("fel_async_late_total"); got != int64(semiRes.LateDrops) {
				return nil, fmt.Errorf("semisync: fel_async_late_total = %d, want %d", got, semiRes.LateDrops)
			}

			// The point of the exercise: the barrier pays Σ_k max while the
			// async modes overlap waves — strictly fewer ticks, same storm.
			if bufRes.LogicalTicks >= syncRes.LogicalTicks {
				return nil, fmt.Errorf("buffered took %d ticks, sync %d; async must be strictly faster",
					bufRes.LogicalTicks, syncRes.LogicalTicks)
			}
			if semiRes.LogicalTicks >= syncRes.LogicalTicks {
				return nil, fmt.Errorf("semisync took %d ticks, sync %d; deadlines must beat the barrier",
					semiRes.LogicalTicks, syncRes.LogicalTicks)
			}
			logf("straggler-storm-async: ticks sync=%d buffered=%d semisync=%d, carryovers=%d late=%d",
				syncRes.LogicalTicks, bufRes.LogicalTicks, semiRes.LogicalTicks,
				semiRes.Carryovers, semiRes.LateDrops)

			log := &faultnet.Log{}
			recordArrivals(log, async.Buffered, bufRes.ArrivalLog.Events())
			recordArrivals(log, async.SemiSync, semiRes.ArrivalLog.Events())
			return &Result{
				Report:   asyncReport(bufRes),
				Log:      log,
				Registry: reg,
			}, nil
		},
		Expect: func(r *Result) error {
			if r.Report.RoundsRun != 3 {
				return fmt.Errorf("buffered run completed %d rounds, want 3", r.Report.RoundsRun)
			}
			counts := r.Log.Counts()
			arrives := counts[faultnet.Action(async.Arrive.String())]
			if arrives == 0 {
				return fmt.Errorf("no arrive events in the replay log")
			}
			// The buffered half of the log must agree with the run's own
			// fold counter: the log is the replay artifact, the counter the
			// operator's view, and they must not drift.
			if folds := r.Counter("fel_async_folds_total"); folds == 0 || folds > int64(arrives) {
				return fmt.Errorf("fel_async_folds_total = %d with %d arrivals across both modes", folds, arrives)
			}
			if r.Counter("fel_async_flushes_total") == 0 {
				return fmt.Errorf("buffered run flushed nothing")
			}
			return nil
		},
	}
}
