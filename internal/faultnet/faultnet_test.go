package faultnet_test

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/fednode"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/wire"
)

// testMsg builds a small frame with a recognizable payload.
func testMsg(typ wire.Type, round, seq uint32, floats int) *wire.Message {
	m := &wire.Message{Type: typ, Round: round, Seq: seq, From: 7}
	for i := 0; i < floats; i++ {
		m.Floats = append(m.Floats, float64(i)+0.5)
	}
	return m
}

// decodeResult is what the listener half of a test link observed.
type decodeResult struct {
	msg *wire.Message
	err error
}

// acceptAndDecode accepts one conn on ln and decodes count frames from it,
// delivering one result per frame. The returned channel closes when done.
func acceptAndDecode(t *testing.T, ln net.Listener, count int) <-chan decodeResult {
	t.Helper()
	out := make(chan decodeResult, count)
	go func() {
		defer close(out)
		conn, err := ln.Accept()
		if err != nil {
			out <- decodeResult{err: err}
			return
		}
		//lint:ignore dropped-error test cleanup; close failure is irrelevant here
		defer conn.Close()
		for i := 0; i < count; i++ {
			m, err := wire.Decode(conn, 0)
			out <- decodeResult{msg: m, err: err}
			// A checksum failure consumes the whole frame, so the stream
			// stays aligned and decoding can continue; anything else ends
			// the conn.
			if err != nil && !errors.Is(err, wire.ErrChecksum) {
				return
			}
		}
	}()
	return out
}

// wrap builds a faultnet view of a fresh memnet running plan.
func wrap(t *testing.T, plan *faultnet.Plan) *faultnet.Network {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan: %v", err)
	}
	return faultnet.Wrap(fednode.NewMemNetwork(), plan, nil)
}

func TestCorruptFailsChecksumThenStops(t *testing.T) {
	plan := &faultnet.Plan{
		Name: "corrupt", Seed: 1,
		Rules: []faultnet.Rule{{
			From: "client/*", To: "edge/0", Type: "MaskedUpdate",
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionCorrupt, Count: 1, Flips: 3,
		}},
	}
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("edge/0", "e0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	results := acceptAndDecode(t, ln, 1)

	conn, err := nw.DialFrom("client/3", "e0")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn.Close()
	if _, err := wire.Encode(conn, testMsg(wire.MaskedUpdate, 2, 1, 4)); err != nil {
		t.Fatalf("encode corrupted frame: %v", err)
	}
	r := <-results
	if !errors.Is(r.err, wire.ErrChecksum) {
		t.Fatalf("corrupted frame decoded with err=%v, want ErrChecksum", r.err)
	}
	if got := wire.ErrorClass(r.err); got != "checksum" {
		t.Fatalf("ErrorClass = %q, want checksum", got)
	}

	// Count=1 is spent: the next frame must pass untouched.
	results = acceptAndDecode(t, ln, 1)
	conn2, err := nw.DialFrom("client/3", "e0")
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn2.Close()
	want := testMsg(wire.MaskedUpdate, 2, 2, 4)
	if _, err := wire.Encode(conn2, want); err != nil {
		t.Fatalf("encode clean frame: %v", err)
	}
	r = <-results
	if r.err != nil {
		t.Fatalf("clean frame decode: %v", r.err)
	}
	if r.msg.Seq != want.Seq || len(r.msg.Floats) != len(want.Floats) {
		t.Fatalf("clean frame mangled: got %+v", r.msg)
	}

	if c := nw.Log().Counts(); c[faultnet.ActionCorrupt] != 1 {
		t.Fatalf("log counts = %v, want 1 corrupt", c)
	}
}

func TestTruncateSurfacesTruncatedError(t *testing.T) {
	plan := &faultnet.Plan{
		Name: "trunc", Seed: 9,
		Rules: []faultnet.Rule{{
			From: "a", To: "srv",
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionTruncate, Count: 1,
		}},
	}
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("srv", "s")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	results := acceptAndDecode(t, ln, 1)

	conn, err := nw.DialFrom("a", "s")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_, werr := wire.Encode(conn, testMsg(wire.GroupAggregate, 1, 0, 8))
	var inj *faultnet.InjectedError
	if !errors.As(werr, &inj) || inj.Action != faultnet.ActionTruncate {
		t.Fatalf("writer saw %v, want injected truncate", werr)
	}
	r := <-results
	if !errors.Is(r.err, wire.ErrTruncated) {
		t.Fatalf("truncated frame decoded with err=%v, want ErrTruncated", r.err)
	}
}

func TestResetDropsFrameAndClosesConn(t *testing.T) {
	plan := &faultnet.Plan{
		Name: "reset", Seed: 4,
		Rules: []faultnet.Rule{{
			From: "a", To: "srv",
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionReset, Count: 1,
		}},
	}
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("srv", "s")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	results := acceptAndDecode(t, ln, 1)

	conn, err := nw.DialFrom("a", "s")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_, werr := wire.Encode(conn, testMsg(wire.MaskedUpdate, 0, 0, 2))
	var inj *faultnet.InjectedError
	if !errors.As(werr, &inj) || inj.Action != faultnet.ActionReset {
		t.Fatalf("writer saw %v, want injected reset", werr)
	}
	if r := <-results; r.err == nil {
		t.Fatalf("reader decoded a frame after reset: %+v", r.msg)
	}
	// The conn is dead: a second write fails without matching any rule.
	if _, err := wire.Encode(conn, testMsg(wire.MaskedUpdate, 0, 1, 2)); err == nil {
		t.Fatal("write on reset conn succeeded")
	}
}

func TestReadDelayHonorsDeadlineAsTimeout(t *testing.T) {
	plan := &faultnet.Plan{
		Name: "straggle", Seed: 3,
		Rules: []faultnet.Rule{{
			From: "srv", To: "a", // listener→dialer: the dialer's read side
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionDelay, DelayMs: 10_000, Count: 1,
		}},
	}
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("srv", "s")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			served <- err
			return
		}
		//lint:ignore dropped-error test cleanup; close failure is irrelevant here
		defer conn.Close()
		_, err = wire.Encode(conn, testMsg(wire.GlobalModel, 1, 0, 4))
		served <- err
	}()

	conn, err := nw.DialFrom("a", "s")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(80 * time.Millisecond)); err != nil {
		t.Fatalf("set deadline: %v", err)
	}
	start := time.Now()
	_, derr := wire.Decode(conn, 0)
	elapsed := time.Since(start)
	var ne net.Error
	if !errors.As(derr, &ne) || !ne.Timeout() {
		t.Fatalf("delayed read returned %v, want net timeout", derr)
	}
	if got := wire.ErrorClass(derr); got != "timeout" {
		t.Fatalf("ErrorClass = %q, want timeout", got)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("read blocked %v: deadline not honored against injected delay", elapsed)
	}
	if err := <-served; err != nil {
		t.Fatalf("server write: %v", err)
	}
}

func TestWriteDelayAddsLatency(t *testing.T) {
	plan := &faultnet.Plan{
		Name: "slow", Seed: 8,
		Rules: []faultnet.Rule{{
			From: "a", To: "srv",
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionDelay, DelayMs: 60, JitterMs: 20, Count: 1,
		}},
	}
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("srv", "s")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	results := acceptAndDecode(t, ln, 1)

	conn, err := nw.DialFrom("a", "s")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn.Close()
	start := time.Now()
	if _, err := wire.Encode(conn, testMsg(wire.GlobalModel, 0, 0, 1)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if r := <-results; r.err != nil {
		t.Fatalf("decode: %v", r.err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("delayed frame arrived after %v, want >= 60ms", elapsed)
	}
}

func TestPartitionBlocksDialsUntilHeal(t *testing.T) {
	const healMs = 250
	plan := &faultnet.Plan{
		Name: "split", Seed: 5,
		Rules: []faultnet.Rule{{
			From: "edge/1", To: "cloud", Type: "GroupAggregate",
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionPartition, HealMs: healMs, Count: 1,
		}},
	}
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("cloud", "c")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	results := acceptAndDecode(t, ln, 1)

	conn, err := nw.DialFrom("edge/1", "c")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn.Close()

	start := time.Now()
	sent := make(chan error, 1)
	go func() {
		_, err := wire.Encode(conn, testMsg(wire.GroupAggregate, 0, 0, 2))
		sent <- err
	}()

	// Give the writer time to trigger the partition, then dial across it.
	time.Sleep(50 * time.Millisecond)
	if _, err := nw.DialFrom("edge/1", "c"); err == nil {
		t.Fatal("dial across active partition succeeded")
	} else if !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("partitioned dial failed with %v, want partition refusal", err)
	}

	if err := <-sent; err != nil {
		t.Fatalf("partitioned write: %v", err)
	}
	if r := <-results; r.err != nil {
		t.Fatalf("decode after heal: %v", r.err)
	}
	if elapsed := time.Since(start); elapsed < healMs*time.Millisecond {
		t.Fatalf("partitioned frame arrived after %v, want >= %dms", elapsed, healMs)
	}

	// Healed: dialing works again.
	time.Sleep(20 * time.Millisecond)
	if _, err := nw.DialFrom("edge/1", "c"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

// chaosTraffic drives one deterministic frame schedule through a wrapped
// memnet and returns the rendered fault log.
func chaosTraffic(t *testing.T, plan *faultnet.Plan) string {
	t.Helper()
	nw := wrap(t, plan)
	ln, err := nw.ListenAs("edge/0", "e0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	const frames = 20
	results := acceptAndDecode(t, ln, frames)
	conn, err := nw.DialFrom("client/1", "e0")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn.Close()
	for i := 0; i < frames; i++ {
		m := testMsg(wire.MaskedUpdate, uint32(i/4), uint32(i%4), 3)
		if _, err := wire.Encode(conn, m); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	var decodeErrs int
	for r := range results {
		if r.err != nil {
			decodeErrs++
		}
	}
	if c := nw.Log().Counts(); c[faultnet.ActionCorrupt] != decodeErrs {
		t.Fatalf("injected %d corruptions but reader saw %d decode errors", c[faultnet.ActionCorrupt], decodeErrs)
	}
	return nw.Log().String()
}

func TestEventLogDeterministicAcrossRuns(t *testing.T) {
	mkPlan := func() *faultnet.Plan {
		return &faultnet.Plan{
			Name: "probabilistic", Seed: 42,
			Rules: []faultnet.Rule{
				{
					From: "client/*", To: "edge/*", Type: "MaskedUpdate",
					Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
					Action: faultnet.ActionCorrupt, Prob: 0.3, Flips: 2,
				},
				{
					From: "client/*", To: "edge/*",
					Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
					Action: faultnet.ActionDelay, Prob: 0.2, DelayMs: 1, JitterMs: 3,
				},
			},
		}
	}
	first := chaosTraffic(t, mkPlan())
	second := chaosTraffic(t, mkPlan())
	if first != second {
		t.Fatalf("same plan, same seed, different fault logs:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
	if first == "" {
		t.Fatal("probabilistic plan injected nothing over 20 frames")
	}
}

func TestInjectedFaultsLandInRegistry(t *testing.T) {
	plan := &faultnet.Plan{
		Name: "metered", Seed: 2,
		Rules: []faultnet.Rule{{
			From: "a", To: "srv",
			Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
			Action: faultnet.ActionCorrupt, Count: 2,
		}},
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan: %v", err)
	}
	reg := metrics.New()
	nw := faultnet.Wrap(fednode.NewMemNetwork(), plan, reg)
	ln, err := nw.ListenAs("srv", "s")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	results := acceptAndDecode(t, ln, 2)
	conn, err := nw.DialFrom("a", "s")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	//lint:ignore dropped-error test cleanup; close failure is irrelevant here
	defer conn.Close()
	for i := 0; i < 2; i++ {
		if _, err := wire.Encode(conn, testMsg(wire.MaskedUpdate, 0, uint32(i), 2)); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	for r := range results {
		if !errors.Is(r.err, wire.ErrChecksum) {
			t.Fatalf("decode err = %v, want ErrChecksum", r.err)
		}
	}
	got := reg.CounterValue("fel_faultnet_injected_total", metrics.L("action", "corrupt"))
	if got != 2 {
		t.Fatalf("fel_faultnet_injected_total{action=corrupt} = %d, want 2", got)
	}
}

func TestMutatorsMatchInjector(t *testing.T) {
	m := testMsg(wire.MaskedUpdate, 3, 1, 6)
	var buf strings.Builder
	if _, err := wire.Encode(&buf, m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	frame := []byte(buf.String())

	rng := stats.NewRNG(11)
	corrupted := faultnet.CorruptBits(frame, 2, rng)
	if len(corrupted) != len(frame) {
		t.Fatalf("CorruptBits changed length %d → %d", len(frame), len(corrupted))
	}
	if string(corrupted[:wire.HeaderSize]) != string(frame[:wire.HeaderSize]) {
		t.Fatal("CorruptBits touched the header")
	}
	if _, err := wire.Decode(strings.NewReader(string(corrupted)), 0); !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("corrupted frame decode err = %v, want ErrChecksum", err)
	}

	truncated := faultnet.TruncateFrame(frame, rng)
	if len(truncated) >= len(frame) || len(truncated) == 0 {
		t.Fatalf("TruncateFrame returned %d bytes of %d", len(truncated), len(frame))
	}
	if _, err := wire.Decode(strings.NewReader(string(truncated)), 0); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("truncated frame decode err = %v, want ErrTruncated", err)
	}
}

func TestPlanJSONDefaultsAndDelayOnly(t *testing.T) {
	const doc = `{
		"name": "slow-links",
		"seed": 99,
		"rules": [
			{"from": "*", "to": "cloud", "action": "delay", "delay_ms": 5},
			{"from": "edge/*", "to": "cloud", "action": "partition", "heal_ms": 40}
		]
	}`
	path := t.TempDir() + "/plan.json"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatalf("write plan: %v", err)
	}
	p, err := faultnet.LoadPlan(path)
	if err != nil {
		t.Fatalf("LoadPlan: %v", err)
	}
	if p.Name != "slow-links" || p.Seed != 99 || len(p.Rules) != 2 {
		t.Fatalf("plan mis-parsed: %+v", p)
	}
	r := p.Rules[0]
	//lint:ignore float-eq test asserts exact deterministic output
	if r.Round != faultnet.MatchAny || r.Seq != faultnet.MatchAny || r.Prob != 1 || r.Flips != 1 {
		t.Fatalf("rule defaults not applied: %+v", r)
	}
	if !p.DelayOnly() {
		t.Fatal("delay+partition plan reported as destructive")
	}

	p.Rules = append(p.Rules, faultnet.Rule{
		From: "*", To: "*", Round: faultnet.MatchAny, Seq: faultnet.MatchAny,
		Action: faultnet.ActionReset,
	})
	if p.DelayOnly() {
		t.Fatal("reset plan reported as delay-only")
	}
}

func TestPlanValidateRejectsBadRules(t *testing.T) {
	bad := []faultnet.Plan{
		{Name: "empty"},
		{Name: "no-delay", Rules: []faultnet.Rule{{From: "*", To: "*", Action: faultnet.ActionDelay}}},
		{Name: "no-heal", Rules: []faultnet.Rule{{From: "*", To: "*", Action: faultnet.ActionPartition}}},
		{Name: "bad-action", Rules: []faultnet.Rule{{From: "*", To: "*", Action: "explode"}}},
		{Name: "bad-type", Rules: []faultnet.Rule{{From: "*", To: "*", Action: faultnet.ActionReset, Type: "Nope"}}},
		{Name: "no-from", Rules: []faultnet.Rule{{To: "*", Action: faultnet.ActionReset}}},
		{Name: "bad-prob", Rules: []faultnet.Rule{{From: "*", To: "*", Action: faultnet.ActionReset, Prob: 1.5}}},
	}
	for _, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("plan %q validated but should not", p.Name)
		}
	}
}
