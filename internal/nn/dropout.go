package nn

import (
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Dropout zeroes each activation independently with probability Rate during
// training and rescales survivors by 1/(1−Rate) (inverted dropout), so
// evaluation is a plain identity.
type Dropout struct {
	Rate   float64
	rng    *stats.RNG
	mask   []bool
	scaled bool // whether the last Forward applied the training mask
}

// NewDropout creates a dropout layer with its own deterministic stream.
func NewDropout(rate float64, seed uint64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: dropout rate must be in [0, 1)")
	}
	return &Dropout{Rate: rate, rng: stats.NewRNG(seed)}
}

// Forward applies the mask in training mode, identity otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	//lint:ignore float-eq Rate 0 is the exact sentinel for "dropout disabled"
	if !train || d.Rate == 0 {
		// Mark the whole batch as kept so a Backward after an eval-mode
		// Forward behaves as the identity.
		if cap(d.mask) < len(x.Data) {
			d.mask = make([]bool, len(x.Data))
		}
		d.mask = d.mask[:len(x.Data)]
		for i := range d.mask {
			d.mask[i] = true
		}
		d.scaled = false
		return x
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]bool, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	d.scaled = true
	scale := 1 / (1 - d.Rate)
	for i := range out.Data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = false
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] *= scale
		}
	}
	return out
}

// Backward routes gradients through the surviving units with the same
// rescale.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	scale := 1 / (1 - d.Rate)
	for i := range out.Data {
		if !d.mask[i] {
			out.Data[i] = 0
		} else if d.scaled {
			out.Data[i] *= scale
		}
	}
	return out
}

// Params returns nil.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// Clone returns a dropout layer with a split random stream (clones used by
// concurrent clients must not share state).
func (d *Dropout) Clone() Layer {
	return &Dropout{Rate: d.Rate, rng: d.rng.Split(0x0d20b0)}
}

// Name returns the layer name.
func (d *Dropout) Name() string { return "dropout" }
