package nn

import "repro/internal/tensor"

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero and records the active mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward zeroes gradients where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh ReLU.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// Name returns the layer name.
func (r *ReLU) Name() string { return "relu" }

// Flatten reshapes [batch, ...] to [batch, prod(...)]. It is a no-op for
// already-2-D inputs.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions into one.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	batch := x.Shape[0]
	return x.Reshape(batch, x.Size()/batch)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh Flatten.
func (f *Flatten) Clone() Layer { return &Flatten{} }

// Name returns the layer name.
func (f *Flatten) Name() string { return "flatten" }
