package nn

import "repro/internal/tensor"

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool

	// Buffer-reuse mode (Sequential.EnableBufferReuse): out and dgrad are
	// recycled across calls whenever the input shape repeats.
	reuse      bool
	out, dgrad *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

func (r *ReLU) setBufferReuse(on bool) { r.reuse = on }

// scratchLike returns a tensor shaped like x. With reuse on, the cached
// buffer is returned on a shape match and resized in place when its rank
// matches and its backing array is large enough — so alternating batch
// shapes (full vs tail mini-batches) stop allocating once both have been
// seen.
func scratchLike(reuse bool, buf, x *tensor.Tensor) *tensor.Tensor {
	if reuse && buf != nil {
		if buf.SameShape(x) {
			return buf
		}
		if len(buf.Shape) == len(x.Shape) && cap(buf.Data) >= x.Size() {
			copy(buf.Shape, x.Shape)
			buf.Data = buf.Data[:x.Size()]
			return buf
		}
	}
	return tensor.New(x.Shape...)
}

// Forward clamps negatives to zero and records the active mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := scratchLike(r.reuse, r.out, x)
	r.out = out
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			out.Data[i] = v
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward zeroes gradients where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := scratchLike(r.reuse, r.dgrad, grad)
	r.dgrad = out
	for i, g := range grad.Data {
		if r.mask[i] {
			out.Data[i] = g
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh ReLU.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// Name returns the layer name.
func (r *ReLU) Name() string { return "relu" }

// Flatten reshapes [batch, ...] to [batch, prod(...)]. It is a no-op for
// already-2-D inputs.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions into one.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	batch := x.Shape[0]
	return x.Reshape(batch, x.Size()/batch)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh Flatten.
func (f *Flatten) Clone() Layer { return &Flatten{} }

// Name returns the layer name.
func (f *Flatten) Name() string { return "flatten" }
