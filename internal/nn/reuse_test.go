package nn

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// step runs one forward/backward/step with the in-place loss head, the exact
// sequence the training engine's hot loop uses.
func step(m *Sequential, x *tensor.Tensor, y []int, opt *SGD, probs *tensor.Tensor) {
	var loss SoftmaxCrossEntropy
	logits := m.Forward(x, true)
	if probs == nil || !probs.SameShape(logits) {
		probs = tensor.New(logits.Shape...)
	}
	loss.ForwardInto(probs, logits, y)
	loss.BackwardInPlace(probs, y)
	m.Backward(probs)
	opt.Step(m)
}

// TestBufferReuseBitIdentical trains two identically-seeded models — one
// with EnableBufferReuse, one without — through steps that alternate batch
// shapes (the full/tail pattern of mini-batch SGD) and requires bit-for-bit
// equal parameters throughout. Buffer reuse must change where intermediates
// live, never what they hold.
func TestBufferReuseBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Sequential
		shape func(batch int) []int
	}{
		{"mlp", func() *Sequential { return NewMLP(10, []int{16}, 4, 3) },
			func(b int) []int { return []int{b, 10} }},
		{"resnetlite", func() *Sequential { return NewResNetLite(3, 8, 8, 10, 3) },
			func(b int) []int { return []int{b, 3, 8, 8} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := tc.build()
			reused := tc.build()
			reused.EnableBufferReuse()
			optP := NewSGD(0.05)
			optR := NewSGD(0.05)
			rng := stats.NewRNG(11)
			classes := 4
			if tc.name == "resnetlite" {
				classes = 10
			}
			for s, batch := range []int{8, 8, 5, 8, 3, 8} {
				x := tensor.New(tc.shape(batch)...)
				x.RandNormal(rng, 1)
				y := make([]int, batch)
				for i := range y {
					y[i] = rng.IntN(classes)
				}
				step(plain, x, y, optP, nil)
				step(reused, x, y, optR, nil)
				pv, rv := plain.ParamVector(), reused.ParamVector()
				for i := range pv {
					if math.Float64bits(pv[i]) != math.Float64bits(rv[i]) {
						t.Fatalf("step %d (batch %d): param %d diverged: %.17g vs %.17g",
							s, batch, i, rv[i], pv[i])
					}
				}
			}
		})
	}
}

// TestConv2DBufferReuseZeroAlloc pins the conv layer's steady state: with
// reuse on and shapes warmed, a Forward/Backward pair must not allocate.
// The dims keep every matmul under the blocked/parallel dispatch thresholds,
// so the assertion isolates the layer's own buffers from kernel scratch.
func TestConv2DBufferReuseZeroAlloc(t *testing.T) {
	rng := stats.NewRNG(5)
	c := NewConv2D(3, 4, 3, 3, 1, 1, rng)
	c.setBufferReuse(true)
	x := tensor.New(2, 3, 6, 6)
	x.RandNormal(rng, 1)
	out := c.Forward(x, true)
	grad := tensor.New(out.Shape...)
	grad.RandNormal(rng, 1)
	c.Backward(grad)
	if allocs := testing.AllocsPerRun(20, func() {
		c.Forward(x, true)
		c.Backward(grad)
		//lint:ignore float-eq AllocsPerRun returns an exact integer count
	}); allocs != 0 {
		t.Fatalf("warm Conv2D step allocated %.1f times per run, want 0", allocs)
	}
}

// TestParamVectorIntoReuses checks the in-place flatten reuses a
// sufficiently large destination and matches ParamVector exactly.
func TestParamVectorIntoReuses(t *testing.T) {
	m := NewMLP(10, []int{16}, 4, 3)
	want := m.ParamVector()
	buf := make([]float64, len(want))
	got := m.ParamVectorInto(buf)
	if &got[0] != &buf[0] {
		t.Fatal("ParamVectorInto reallocated despite sufficient capacity")
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("param %d: %.17g vs %.17g", i, got[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(10, func() { m.ParamVectorInto(buf) }); allocs > 0 {
		t.Fatalf("ParamVectorInto allocates %.1f objects with a warm buffer, want 0", allocs)
	}
}
