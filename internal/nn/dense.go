package nn

import (
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b for x of shape
// [batch, in] and W of shape [in, out].
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	x      *tensor.Tensor // cached input
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, rng *stats.RNG) *Dense {
	d := &Dense{
		W:  tensor.New(in, out),
		B:  tensor.New(out),
		dW: tensor.New(in, out),
		dB: tensor.New(out),
	}
	d.W.RandNormal(rng, math.Sqrt(2/float64(in)))
	return d
}

// Forward computes y = x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.x = x
	batch := x.Shape[0]
	out := tensor.New(batch, d.W.Shape[1])
	tensor.MatMul(out, x, d.W)
	ncols := d.B.Size()
	for i := 0; i < batch; i++ {
		row := out.Data[i*ncols : (i+1)*ncols]
		for j, b := range d.B.Data {
			row[j] += b
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·grad, dB = column-sum(grad) and returns
// dX = grad·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.MatMulAT(d.dW, d.x, grad)
	ncols := d.B.Size()
	d.dB.Zero()
	for i := 0; i < grad.Shape[0]; i++ {
		row := grad.Data[i*ncols : (i+1)*ncols]
		for j, g := range row {
			d.dB.Data[j] += g
		}
	}
	dx := tensor.New(grad.Shape[0], d.W.Shape[0])
	tensor.MatMulBT(dx, grad, d.W)
	return dx
}

// Params returns [W, B].
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns [dW, dB].
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// Clone deep-copies the layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		W:  d.W.Clone(),
		B:  d.B.Clone(),
		dW: tensor.New(d.dW.Shape...),
		dB: tensor.New(d.dB.Shape...),
	}
}

// Name returns the layer name.
func (d *Dense) Name() string { return "dense" }
