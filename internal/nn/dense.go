package nn

import (
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b for x of shape
// [batch, in] and W of shape [in, out].
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	x      *tensor.Tensor // cached input

	// Buffer-reuse mode (Sequential.EnableBufferReuse): out and dx are
	// recycled across calls whenever the batch shape repeats.
	reuse   bool
	out, dx *tensor.Tensor
}

func (d *Dense) setBufferReuse(on bool) { d.reuse = on }

// scratch2 returns a [rows, cols] tensor for an output buffer. With reuse on,
// the cached buffer is returned as-is on a shape match and resized in place
// when its backing array is large enough — so alternating batch shapes (the
// SGD loop's full and tail batches) stop allocating once both have been seen.
func scratch2(reuse bool, buf *tensor.Tensor, rows, cols int) *tensor.Tensor {
	if reuse && buf != nil && len(buf.Shape) == 2 && cap(buf.Data) >= rows*cols {
		buf.Shape[0], buf.Shape[1] = rows, cols
		buf.Data = buf.Data[:rows*cols]
		return buf
	}
	return tensor.New(rows, cols)
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, rng *stats.RNG) *Dense {
	d := &Dense{
		W:  tensor.New(in, out),
		B:  tensor.New(out),
		dW: tensor.New(in, out),
		dB: tensor.New(out),
	}
	d.W.RandNormal(rng, math.Sqrt(2/float64(in)))
	return d
}

// Forward computes y = x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.x = x
	batch := x.Shape[0]
	out := scratch2(d.reuse, d.out, batch, d.W.Shape[1])
	d.out = out
	tensor.MatMul(out, x, d.W)
	ncols := d.B.Size()
	for i := 0; i < batch; i++ {
		row := out.Data[i*ncols : (i+1)*ncols]
		for j, b := range d.B.Data {
			row[j] += b
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·grad, dB = column-sum(grad) and returns
// dX = grad·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.MatMulAT(d.dW, d.x, grad)
	ncols := d.B.Size()
	d.dB.Zero()
	for i := 0; i < grad.Shape[0]; i++ {
		row := grad.Data[i*ncols : (i+1)*ncols]
		for j, g := range row {
			d.dB.Data[j] += g
		}
	}
	dx := scratch2(d.reuse, d.dx, grad.Shape[0], d.W.Shape[0])
	d.dx = dx
	tensor.MatMulBT(dx, grad, d.W)
	return dx
}

// Params returns [W, B].
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns [dW, dB].
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// Clone deep-copies the layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		W:  d.W.Clone(),
		B:  d.B.Clone(),
		dW: tensor.New(d.dW.Shape...),
		dB: tensor.New(d.dB.Shape...),
	}
}

// Name returns the layer name.
func (d *Dense) Name() string { return "dense" }
