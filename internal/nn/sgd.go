package nn

import (
	"math"

	"repro/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum and weight decay.
// The paper's local update (Alg. 1 line 13) is plain SGD; momentum and decay
// are exposed for the ablation benches.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	vel         []*tensor.Tensor
}

// NewSGD returns an optimizer with the given learning rate and no momentum
// or weight decay.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one descent update to every parameter of m using the
// currently accumulated gradients. Gradients are not cleared; call
// m.ZeroGrads() if the next batch should start fresh (per-batch backward
// passes overwrite dense/conv gradients, so the common loop does not need
// to).
//
//lint:hotpath
func (o *SGD) Step(m *Sequential) {
	params := m.Params()
	grads := m.Grads()
	//lint:ignore float-eq Momentum 0 is the exact sentinel for "momentum disabled"
	if o.Momentum != 0 && o.vel == nil {
		o.vel = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			o.vel[i] = tensor.New(p.Shape...)
		}
	}
	for i, p := range params {
		g := grads[i]
		//lint:ignore float-eq WeightDecay 0 is the exact sentinel for "decay disabled"
		if o.WeightDecay != 0 {
			// g += wd * p, folded into the update below without mutating g.
			//lint:ignore float-eq Momentum 0 is the exact sentinel for "momentum disabled"
			if o.Momentum != 0 {
				v := o.vel[i]
				for j := range p.Data {
					gv := g.Data[j] + o.WeightDecay*p.Data[j]
					v.Data[j] = o.Momentum*v.Data[j] + gv
					p.Data[j] -= o.LR * v.Data[j]
				}
			} else {
				for j := range p.Data {
					p.Data[j] -= o.LR * (g.Data[j] + o.WeightDecay*p.Data[j])
				}
			}
			continue
		}
		//lint:ignore float-eq Momentum 0 is the exact sentinel for "momentum disabled"
		if o.Momentum != 0 {
			v := o.vel[i]
			for j := range p.Data {
				v.Data[j] = o.Momentum*v.Data[j] + g.Data[j]
				p.Data[j] -= o.LR * v.Data[j]
			}
		} else {
			p.AddScaled(-o.LR, g)
		}
	}
}

// ClipGradNorm rescales the model's gradients so their global L2 norm is at
// most maxNorm, returning the pre-clip norm. A non-positive maxNorm is a
// no-op.
func ClipGradNorm(m *Sequential, maxNorm float64) float64 {
	total := 0.0
	for _, g := range m.Grads() {
		n := g.Norm()
		total += n * n
	}
	norm := math.Sqrt(total)
	//lint:ignore float-eq a gradient norm of exactly zero cannot be rescaled; ordering compares handle the rest
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, g := range m.Grads() {
		g.Scale(scale)
	}
	return norm
}
