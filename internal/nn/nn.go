// Package nn is a compact, dependency-free neural network substrate: dense
// and convolutional layers with explicit forward/backward passes, residual
// blocks, softmax cross-entropy loss, and SGD. It provides exactly what the
// federated learning algorithms in this repository need — models whose
// parameters can be flattened to vectors, aggregated, perturbed, and
// gradient-checked — without pulling in a deep learning framework (which Go
// lacks; see DESIGN.md substitution table).
//
// All layers are single-goroutine objects: clone a model per concurrent
// client. Heavy math (matrix multiplies inside dense/conv layers) is
// parallelized internally by the tensor package.
package nn

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward must be called
// before Backward; layers cache activations internally between the two.
type Layer interface {
	// Forward computes the layer output for a batch. train toggles
	// training-only behaviour (none of the current layers need it, but the
	// interface keeps dropout-style layers pluggable).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient of the loss w.r.t. the layer output
	// and returns the gradient w.r.t. the layer input, accumulating
	// parameter gradients internally.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
	// Clone returns a deep copy with fresh caches and copied parameters.
	Clone() Layer
	// Name identifies the layer in error messages.
	Name() string
}

// Sequential chains layers into a feed-forward network.
//
// The layer list must not be restructured after the first Forward, Params,
// or Grads call: parameter and gradient tensor lists are memoized so the
// optimizer and the federated vector round-trips stay allocation-free.
type Sequential struct {
	Layers []Layer

	// Memoized Params/Grads results (the tensor pointers are stable for the
	// life of the network, so building the lists once is safe).
	params, grads []*tensor.Tensor
	numParams     int
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the batch x through every layer.
//
//lint:hotpath
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad back through every layer, accumulating parameter
// gradients.
//
//lint:hotpath
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable tensors in layer order. The list is memoized;
// callers must treat it as read-only.
//
//lint:hotpath
func (s *Sequential) Params() []*tensor.Tensor {
	if s.params == nil {
		for _, l := range s.Layers {
			s.params = append(s.params, l.Params()...)
		}
		for _, p := range s.params {
			s.numParams += p.Size()
		}
	}
	return s.params
}

// Grads returns all gradient tensors in layer order. The list is memoized;
// callers must treat it as read-only.
//
//lint:hotpath
func (s *Sequential) Grads() []*tensor.Tensor {
	if s.grads == nil {
		for _, l := range s.Layers {
			s.grads = append(s.grads, l.Grads()...)
		}
	}
	return s.grads
}

// Clone deep-copies the network (parameters copied, caches fresh).
func (s *Sequential) Clone() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// NumParams returns the total number of scalar parameters.
//
//lint:hotpath
func (s *Sequential) NumParams() int {
	s.Params()
	return s.numParams
}

// ParamVector flattens all parameters into a single new vector, in a stable
// layer order. This is the representation exchanged by the federated
// aggregation, secure aggregation, and backdoor detection code.
func (s *Sequential) ParamVector() []float64 {
	return s.ParamVectorInto(nil)
}

// ParamVectorInto writes the flattened parameters into dst and returns it,
// reallocating only when dst's capacity is short. Passing a reused buffer
// makes the per-client parameter export in the training hot loop
// allocation-free; ParamVectorInto(nil) is equivalent to ParamVector.
//
//lint:hotpath
func (s *Sequential) ParamVectorInto(dst []float64) []float64 {
	n := s.NumParams()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	off := 0
	for _, p := range s.Params() {
		off += copy(dst[off:], p.Data)
	}
	return dst
}

// SetParamVector writes v back into the parameters. len(v) must equal
// NumParams.
func (s *Sequential) SetParamVector(v []float64) {
	off := 0
	for _, p := range s.Params() {
		n := p.Size()
		if off+n > len(v) {
			panic(fmt.Sprintf("nn: SetParamVector short vector: have %d, need %d", len(v), s.NumParams()))
		}
		copy(p.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: SetParamVector length %d, want %d", len(v), off))
	}
}

// bufferReuser is implemented by layers that can serve Forward/Backward from
// cached output buffers instead of fresh allocations.
type bufferReuser interface{ setBufferReuse(on bool) }

// EnableBufferReuse switches supporting layers (Dense, ReLU, Conv2D, and the
// layers inside Residual blocks) into buffer-reuse mode: Forward and Backward
// return the same cached tensors on every call with a matching shape instead
// of freshly allocated ones, which removes the steady-state allocations of
// the SGD inner loop. For Conv2D that includes the im2col matrix and both
// matmul staging buffers — by far the largest per-step garbage of a conv net.
//
// A reused output is only valid until the layer's next Forward or Backward
// call, so enable this only on models whose intermediate tensors are
// consumed immediately — the training engine's per-worker clones, never a
// model whose activations a caller retains across steps.
func (s *Sequential) EnableBufferReuse() {
	for _, l := range s.Layers {
		if r, ok := l.(bufferReuser); ok {
			r.setBufferReuse(true)
		}
	}
}

// GradVector flattens all gradients into a single new vector aligned with
// ParamVector.
func (s *Sequential) GradVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, g := range s.Grads() {
		out = append(out, g.Data...)
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// Summary returns a human-readable architecture description: one line per
// layer with its parameter count, plus the total.
func (s *Sequential) Summary() string {
	var b strings.Builder
	total := 0
	for i, l := range s.Layers {
		n := 0
		for _, p := range l.Params() {
			n += p.Size()
		}
		total += n
		fmt.Fprintf(&b, "%2d  %-14s %8d params\n", i, l.Name(), n)
	}
	fmt.Fprintf(&b, "    %-14s %8d params\n", "total", total)
	return b.String()
}
