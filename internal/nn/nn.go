// Package nn is a compact, dependency-free neural network substrate: dense
// and convolutional layers with explicit forward/backward passes, residual
// blocks, softmax cross-entropy loss, and SGD. It provides exactly what the
// federated learning algorithms in this repository need — models whose
// parameters can be flattened to vectors, aggregated, perturbed, and
// gradient-checked — without pulling in a deep learning framework (which Go
// lacks; see DESIGN.md substitution table).
//
// All layers are single-goroutine objects: clone a model per concurrent
// client. Heavy math (matrix multiplies inside dense/conv layers) is
// parallelized internally by the tensor package.
package nn

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward must be called
// before Backward; layers cache activations internally between the two.
type Layer interface {
	// Forward computes the layer output for a batch. train toggles
	// training-only behaviour (none of the current layers need it, but the
	// interface keeps dropout-style layers pluggable).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient of the loss w.r.t. the layer output
	// and returns the gradient w.r.t. the layer input, accumulating
	// parameter gradients internally.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
	// Clone returns a deep copy with fresh caches and copied parameters.
	Clone() Layer
	// Name identifies the layer in error messages.
	Name() string
}

// Sequential chains layers into a feed-forward network.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the batch x through every layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad back through every layer, accumulating parameter
// gradients.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable tensors in layer order.
func (s *Sequential) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradient tensors in layer order.
func (s *Sequential) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// Clone deep-copies the network (parameters copied, caches fresh).
func (s *Sequential) Clone() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Size()
	}
	return n
}

// ParamVector flattens all parameters into a single new vector, in a stable
// layer order. This is the representation exchanged by the federated
// aggregation, secure aggregation, and backdoor detection code.
func (s *Sequential) ParamVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, p := range s.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// SetParamVector writes v back into the parameters. len(v) must equal
// NumParams.
func (s *Sequential) SetParamVector(v []float64) {
	off := 0
	for _, p := range s.Params() {
		n := p.Size()
		if off+n > len(v) {
			panic(fmt.Sprintf("nn: SetParamVector short vector: have %d, need %d", len(v), s.NumParams()))
		}
		copy(p.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: SetParamVector length %d, want %d", len(v), off))
	}
}

// GradVector flattens all gradients into a single new vector aligned with
// ParamVector.
func (s *Sequential) GradVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, g := range s.Grads() {
		out = append(out, g.Data...)
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// Summary returns a human-readable architecture description: one line per
// layer with its parameter count, plus the total.
func (s *Sequential) Summary() string {
	var b strings.Builder
	total := 0
	for i, l := range s.Layers {
		n := 0
		for _, p := range l.Params() {
			n += p.Size()
		}
		total += n
		fmt.Fprintf(&b, "%2d  %-14s %8d params\n", i, l.Name(), n)
	}
	fmt.Fprintf(&b, "    %-14s %8d params\n", "total", total)
	return b.String()
}
