package nn

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestBatchNormNormalizesTraining(t *testing.T) {
	bn := NewBatchNorm(3)
	rng := stats.NewRNG(1)
	x := tensor.New(16, 3)
	for i := range x.Data {
		x.Data[i] = rng.Normal(5, 3) // far from standardized
	}
	y := bn.Forward(x, true)
	// Each feature column of the output should be ~N(0,1) (gamma=1, beta=0).
	for f := 0; f < 3; f++ {
		var sum, ss float64
		for b := 0; b < 16; b++ {
			v := y.At(b, f)
			sum += v
		}
		mean := sum / 16
		for b := 0; b < 16; b++ {
			d := y.At(b, f) - mean
			ss += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %v", f, mean)
		}
		if v := ss / 16; math.Abs(v-1) > 1e-3 {
			t.Fatalf("feature %d variance %v", f, v)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := stats.NewRNG(2)
	// Train on many batches to settle running stats.
	for it := 0; it < 200; it++ {
		x := tensor.New(32, 2)
		for i := range x.Data {
			x.Data[i] = rng.Normal(4, 2)
		}
		bn.Forward(x, true)
	}
	// Eval on a fresh batch from the same distribution: output should be
	// roughly standardized even though eval stats are the running ones.
	x := tensor.New(64, 2)
	for i := range x.Data {
		x.Data[i] = rng.Normal(4, 2)
	}
	y := bn.Forward(x, false)
	var sum float64
	for _, v := range y.Data {
		sum += v
	}
	if m := sum / float64(len(y.Data)); math.Abs(m) > 0.3 {
		t.Fatalf("eval-mode mean %v, want ~0", m)
	}
}

func TestBatchNorm4D(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := stats.NewRNG(3)
	x := tensor.New(4, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = rng.Normal(-2, 4)
	}
	y := bn.Forward(x, true)
	// Per-channel standardization across batch and space.
	for c := 0; c < 2; c++ {
		var sum float64
		cnt := 0
		for b := 0; b < 4; b++ {
			for s := 0; s < 9; s++ {
				sum += y.Data[(b*2+c)*9+s]
				cnt++
			}
		}
		if m := sum / float64(cnt); math.Abs(m) > 1e-9 {
			t.Fatalf("channel %d mean %v", c, m)
		}
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := stats.NewRNG(5)
	net := NewSequential(
		NewDense(4, 6, rng),
		NewBatchNorm(6),
		NewReLU(),
		NewDense(6, 3, rng),
	)
	x := tensor.New(8, 4)
	x.RandNormal(rng, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	gradCheck(t, net, x, labels, 40, 2e-4)
}

func TestBatchNormConvGradCheck(t *testing.T) {
	rng := stats.NewRNG(6)
	net := NewSequential(
		NewConv2D(1, 3, 3, 3, 1, 1, rng),
		NewBatchNorm(3),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(3, 2, rng),
	)
	x := tensor.New(3, 1, 4, 4)
	x.RandNormal(rng, 1)
	gradCheck(t, net, x, []int{0, 1, 0}, 40, 2e-4)
}

func TestBatchNormCloneIndependent(t *testing.T) {
	bn := NewBatchNorm(2)
	bn.RunMean.Data[0] = 5
	c := bn.Clone().(*BatchNorm)
	c.RunMean.Data[0] = 9
	//lint:ignore float-eq test asserts exact deterministic output
	if bn.RunMean.Data[0] != 5 {
		t.Fatal("clone shares running stats")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if c.Gamma.Data[0] != 1 || c.RunVar.Data[1] != 1 {
		t.Fatal("clone lost initialization")
	}
}

func TestBatchNormParamVectorIncludesRunningStats(t *testing.T) {
	net := NewSequential(NewBatchNorm(2))
	if got := len(net.ParamVector()); got != 8 { // gamma, beta, mean, var
		t.Fatalf("param vector length %d, want 8", got)
	}
	// SGD must leave running stats untouched (zero grads).
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := net.Forward(x, true)
	net.Backward(y.Clone())
	before := append([]float64(nil), net.Layers[0].(*BatchNorm).RunMean.Data...)
	NewSGD(0.5).Step(net)
	after := net.Layers[0].(*BatchNorm).RunMean.Data
	for i := range before {
		//lint:ignore float-eq test asserts exact deterministic output
		if before[i] != after[i] {
			t.Fatal("SGD modified running statistics")
		}
	}
}

func TestBatchNormBadShapePanics(t *testing.T) {
	bn := NewBatchNorm(3)
	for _, x := range []*tensor.Tensor{
		tensor.New(2, 4),       // wrong feature count
		tensor.New(2, 4, 2, 2), // wrong channel count
		tensor.New(6),          // wrong rank
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for shape %v", x.Shape)
				}
			}()
			bn.Forward(x, true)
		}()
	}
}

func TestDropoutEvalIdentity(t *testing.T) {
	d := NewDropout(0.5, 1)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := d.Forward(x, false)
	for i := range x.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// Backward after eval forward is also identity.
	g := d.Backward(x)
	for i := range x.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if g.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout backward must be identity")
		}
	}
}

func TestDropoutTrainRateAndScale(t *testing.T) {
	d := NewDropout(0.3, 2)
	n := 20000
	x := tensor.New(1, n)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, sum := 0, 0.0
	for _, v := range y.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if v == 0 {
			zeros++
		} else if math.Abs(v-1/0.7) > 1e-12 {
			t.Fatalf("survivor scaled to %v, want %v", v, 1/0.7)
		}
		sum += v
	}
	frac := float64(zeros) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("dropped fraction %v, want ~0.3", frac)
	}
	// Inverted dropout preserves the expectation.
	if mean := sum / float64(n); math.Abs(mean-1) > 0.03 {
		t.Fatalf("post-dropout mean %v, want ~1", mean)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.5, 3)
	x := tensor.New(1, 100)
	x.Fill(1)
	y := d.Forward(x, true)
	g := tensor.New(1, 100)
	g.Fill(1)
	dx := d.Backward(g)
	for i := range y.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestDropoutClonesDiverge(t *testing.T) {
	d := NewDropout(0.5, 4)
	c := d.Clone().(*Dropout)
	x := tensor.New(1, 200)
	x.Fill(1)
	a := d.Forward(x, true).Clone()
	b := c.Forward(x, true)
	same := 0
	for i := range a.Data {
		//lint:ignore float-eq test asserts exact deterministic output
		if (a.Data[i] == 0) == (b.Data[i] == 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("clone shares the random stream")
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	for _, r := range []float64{-0.1, 1.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for rate %v", r)
				}
			}()
			NewDropout(r, 1)
		}()
	}
}

func TestTanhSigmoidLeakyGradCheck(t *testing.T) {
	rng := stats.NewRNG(7)
	net := NewSequential(
		NewDense(4, 6, rng), NewTanh(),
		NewDense(6, 6, rng), NewSigmoid(),
		NewDense(6, 5, rng), NewLeakyReLU(0.1),
		NewDense(5, 3, rng),
	)
	x := tensor.New(5, 4)
	x.RandNormal(rng, 1)
	gradCheck(t, net, x, []int{0, 1, 2, 1, 0}, 50, 2e-4)
}

func TestActivationKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float64{0, 1, -1}, 1, 3)
	y := NewTanh().Forward(x, false)
	//lint:ignore float-eq test asserts exact deterministic output
	if y.Data[0] != 0 || math.Abs(y.Data[1]-math.Tanh(1)) > 1e-15 {
		t.Fatal("tanh values wrong")
	}
	s := NewSigmoid().Forward(x, false)
	if math.Abs(s.Data[0]-0.5) > 1e-15 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	l := NewLeakyReLU(0.2).Forward(x, false)
	//lint:ignore float-eq test asserts exact deterministic output
	if l.Data[1] != 1 || math.Abs(l.Data[2]+0.2) > 1e-15 {
		t.Fatalf("leaky relu values wrong: %v", l.Data)
	}
}

func TestAdamConvergesFasterThanSGDOnIllConditioned(t *testing.T) {
	// A badly scaled input makes plain SGD slow; Adam should reach a lower
	// loss in the same budget.
	build := func() (*Sequential, *tensor.Tensor, []int) {
		rng := stats.NewRNG(11)
		m := NewMLP(2, []int{8}, 2, 5)
		x := tensor.New(32, 2)
		labels := make([]int, 32)
		for i := 0; i < 32; i++ {
			cls := i % 2
			x.Data[i*2] = rng.Normal(float64(2*cls-1), 0.2) * 100 // huge scale
			x.Data[i*2+1] = rng.Normal(float64(1-2*cls), 0.2) * 0.01
			labels[i] = cls
		}
		return m, x, labels
	}
	runLoss := func(step func(m *Sequential)) float64 {
		m, x, labels := build()
		loss := SoftmaxCrossEntropy{}
		for it := 0; it < 40; it++ {
			logits := m.Forward(x, true)
			_, probs := loss.Forward(logits, labels)
			m.Backward(loss.Backward(probs, labels))
			step(m)
		}
		l, _ := SoftmaxCrossEntropy{}.Forward(m.Forward(x, false), labels)
		return l
	}
	sgd := NewSGD(1e-4) // must be tiny or it diverges on the x100 feature
	adam := NewAdam(0.05)
	sgdLoss := runLoss(func(m *Sequential) { sgd.Step(m) })
	adamLoss := runLoss(func(m *Sequential) { adam.Step(m) })
	if adamLoss >= sgdLoss {
		t.Fatalf("Adam loss %v should beat SGD %v on ill-conditioned data", adamLoss, sgdLoss)
	}
}

func TestAdamWeightDecayShrinksWeights(t *testing.T) {
	m := NewLogistic(4, 2, 9)
	adam := NewAdam(0.01)
	adam.WeightDecay = 0.5
	before := 0.0
	for _, v := range m.ParamVector() {
		before += v * v
	}
	// Zero gradients: only decay acts.
	m.ZeroGrads()
	for i := 0; i < 20; i++ {
		adam.Step(m)
	}
	after := 0.0
	for _, v := range m.ParamVector() {
		after += v * v
	}
	if after >= before {
		t.Fatalf("weight decay failed: %v -> %v", before, after)
	}
}

func TestLRSchedules(t *testing.T) {
	//lint:ignore float-eq test asserts exact deterministic output
	if ConstantLR(0.1).At(0) != 0.1 || ConstantLR(0.1).At(1000) != 0.1 {
		t.Fatal("constant schedule wrong")
	}
	sd := StepDecay{Base: 1, Factor: 0.5, Every: 10}
	//lint:ignore float-eq test asserts exact deterministic output
	if sd.At(0) != 1 || sd.At(10) != 0.5 || sd.At(25) != 0.25 {
		t.Fatalf("step decay wrong: %v %v %v", sd.At(0), sd.At(10), sd.At(25))
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if (StepDecay{Base: 2}).At(100) != 2 {
		t.Fatal("step decay without Every should be constant")
	}
	cd := CosineDecay{Base: 1, Floor: 0.1, Horizon: 100}
	//lint:ignore float-eq test asserts exact deterministic output
	if cd.At(0) != 1 {
		t.Fatalf("cosine at 0 = %v", cd.At(0))
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if got := cd.At(100); got != 0.1 {
		t.Fatalf("cosine past horizon = %v", got)
	}
	mid := cd.At(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine midpoint = %v", mid)
	}
	// Monotone non-increasing.
	prev := cd.At(0)
	for s := 1; s <= 100; s++ {
		if v := cd.At(s); v > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", s)
		} else {
			prev = v
		}
	}
}
