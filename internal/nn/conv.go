package nn

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [batch, channels, height, width] inputs,
// implemented as im2col + matrix multiplication so the heavy lifting runs on
// the parallel matmul kernels.
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	W           *tensor.Tensor // [OutC, InC*KH*KW]
	B           *tensor.Tensor // [OutC]
	dW, dB      *tensor.Tensor
	cols        *tensor.Tensor // cached im2col of the last input
	inShape     []int
	outH, outW  int

	// Buffer-reuse mode (Sequential.EnableBufferReuse): the im2col matrix,
	// both matmul operand/output buffers, and the input gradient are
	// recycled across calls whenever their backing arrays are big enough —
	// the conv analogue of Dense's out/dx recycling. The padding zeros and
	// the col2im accumulator are re-zeroed explicitly, so a recycled buffer
	// can never leak a previous batch's values into the result.
	reuse        bool
	outCols, out *tensor.Tensor
	dy, dcols    *tensor.Tensor
	dx           *tensor.Tensor
}

func (c *Conv2D) setBufferReuse(on bool) { c.reuse = on }

// scratch4 is scratch2 for rank-4 buffers (conv activations and gradients).
func scratch4(reuse bool, buf *tensor.Tensor, s0, s1, s2, s3 int) *tensor.Tensor {
	n := s0 * s1 * s2 * s3
	if reuse && buf != nil && len(buf.Shape) == 4 && cap(buf.Data) >= n {
		buf.Shape[0], buf.Shape[1], buf.Shape[2], buf.Shape[3] = s0, s1, s2, s3
		buf.Data = buf.Data[:n]
		return buf
	}
	return tensor.New(s0, s1, s2, s3)
}

// NewConv2D creates a conv layer with He initialization.
func NewConv2D(inC, outC, kh, kw, stride, pad int, rng *stats.RNG) *Conv2D {
	k := inC * kh * kw
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W:  tensor.New(outC, k),
		B:  tensor.New(outC),
		dW: tensor.New(outC, k),
		dB: tensor.New(outC),
	}
	c.W.RandNormal(rng, math.Sqrt(2/float64(k)))
	return c
}

// outDims returns the spatial output size for input h×w.
func (c *Conv2D) outDims(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output dims %dx%d for input %dx%d", oh, ow, h, w))
	}
	return oh, ow
}

// im2col unrolls x [B,C,H,W] into [B*OH*OW, C*KH*KW].
func (c *Conv2D) im2col(x *tensor.Tensor) *tensor.Tensor {
	b, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := c.outDims(h, w)
	k := ch * c.KH * c.KW
	cols := scratch2(c.reuse, c.cols, b*oh*ow, k)
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((bi*oh+oy)*ow+ox)*k : ((bi*oh+oy)*ow+ox+1)*k]
				idx := 0
				for ci := 0; ci < ch; ci++ {
					base := (bi*ch + ci) * h * w
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								row[idx] = x.Data[base+iy*w+ix]
							} else {
								// Explicit, not relying on fresh-buffer zeroing:
								// a recycled row may hold stale values here.
								row[idx] = 0
							}
							idx++
						}
					}
				}
			}
		}
	}
	return cols
}

// col2im scatter-adds cols [B*OH*OW, C*KH*KW] back into an input-shaped
// gradient tensor.
func (c *Conv2D) col2im(cols *tensor.Tensor, b, ch, h, w int) *tensor.Tensor {
	oh, ow := c.outDims(h, w)
	k := ch * c.KH * c.KW
	dx := scratch4(c.reuse, c.dx, b, ch, h, w)
	c.dx = dx
	dx.Zero() // scatter-add accumulator: a recycled buffer must start clean
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((bi*oh+oy)*ow+ox)*k : ((bi*oh+oy)*ow+ox+1)*k]
				idx := 0
				for ci := 0; ci < ch; ci++ {
					base := (bi*ch + ci) * h * w
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dx.Data[base+iy*w+ix] += row[idx]
							}
							idx++
						}
					}
				}
			}
		}
	}
	return dx
}

// Forward computes the convolution.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: conv expects [B,%d,H,W], got %v", c.InC, x.Shape))
	}
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.outDims(h, w)
	c.inShape = append(c.inShape[:0], x.Shape...)
	c.outH, c.outW = oh, ow
	cols := c.im2col(x)
	c.cols = cols
	// outCols[n, oc] = cols[n, :]·W[oc, :]
	outCols := scratch2(c.reuse, c.outCols, b*oh*ow, c.OutC)
	c.outCols = outCols
	tensor.MatMulBT(outCols, cols, c.W)
	// Reorder [B, OH*OW, OutC] -> [B, OutC, OH, OW] and add bias.
	out := scratch4(c.reuse, c.out, b, c.OutC, oh, ow)
	c.out = out
	hw := oh * ow
	for bi := 0; bi < b; bi++ {
		for n := 0; n < hw; n++ {
			src := outCols.Data[(bi*hw+n)*c.OutC : (bi*hw+n+1)*c.OutC]
			for oc, v := range src {
				out.Data[(bi*c.OutC+oc)*hw+n] = v + c.B.Data[oc]
			}
		}
	}
	return out
}

// Backward accumulates dW, dB and returns dX.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b := c.inShape[0]
	hw := c.outH * c.outW
	// Reorder grad [B, OutC, OH, OW] -> dYcols [B*OH*OW, OutC].
	dy := scratch2(c.reuse, c.dy, b*hw, c.OutC)
	c.dy = dy
	for bi := 0; bi < b; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := grad.Data[(bi*c.OutC+oc)*hw : (bi*c.OutC+oc+1)*hw]
			for n, v := range src {
				dy.Data[(bi*hw+n)*c.OutC+oc] = v
			}
		}
	}
	// dW = dyᵀ × cols, dB = column sums of dy.
	tensor.MatMulAT(c.dW, dy, c.cols)
	c.dB.Zero()
	for n := 0; n < b*hw; n++ {
		row := dy.Data[n*c.OutC : (n+1)*c.OutC]
		for oc, v := range row {
			c.dB.Data[oc] += v
		}
	}
	// dcols = dy × W, then scatter back.
	dcols := scratch2(c.reuse, c.dcols, b*hw, c.W.Shape[1])
	c.dcols = dcols
	tensor.MatMul(dcols, dy, c.W)
	return c.col2im(dcols, b, c.inShape[1], c.inShape[2], c.inShape[3])
}

// Params returns [W, B].
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns [dW, dB].
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Clone deep-copies the layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
		W: c.W.Clone(), B: c.B.Clone(),
		dW: tensor.New(c.dW.Shape...), dB: tensor.New(c.dB.Shape...),
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return "conv2d" }
