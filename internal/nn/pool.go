package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D downsamples [B,C,H,W] inputs with a square window and equal
// stride (the classic non-overlapping pooling).
type MaxPool2D struct {
	K       int
	argmax  []int
	inShape []int
}

// NewMaxPool2D returns a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Forward computes window maxima and records argmax indices for backward.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: maxpool expects rank-4 input, got %v", x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/p.K, w/p.K
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: maxpool window %d too large for %dx%d", p.K, h, w))
	}
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := tensor.New(b, c, oh, ow)
	if cap(p.argmax) < out.Size() {
		p.argmax = make([]int, out.Size())
	}
	p.argmax = p.argmax[:out.Size()]
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := (bi*c + ci) * h * w
			obase := (bi*c + ci) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := base + (oy*p.K)*w + ox*p.K
					bv := x.Data[best]
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := base + (oy*p.K+ky)*w + (ox*p.K + kx)
							if x.Data[idx] > bv {
								bv = x.Data[idx]
								best = idx
							}
						}
					}
					o := obase + oy*ow + ox
					out.Data[o] = bv
					p.argmax[o] = best
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to its argmax input position.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	for o, idx := range p.argmax {
		dx.Data[idx] += grad.Data[o]
	}
	return dx
}

// Params returns nil.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh pool layer.
func (p *MaxPool2D) Clone() Layer { return &MaxPool2D{K: p.K} }

// Name returns the layer name.
func (p *MaxPool2D) Name() string { return "maxpool2d" }

// GlobalAvgPool reduces [B,C,H,W] to [B,C] by averaging each feature map,
// as used before the classifier head in the ResNet-lite model.
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial dimensions.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: gap expects rank-4 input, got %v", x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := tensor.New(b, c)
	hw := float64(h * w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			s := 0.0
			fm := x.Data[(bi*c+ci)*h*w : (bi*c+ci+1)*h*w]
			for _, v := range fm {
				s += v
			}
			out.Data[bi*c+ci] = s / hw
		}
	}
	return out
}

// Backward spreads each gradient uniformly over the pooled region.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	dx := tensor.New(p.inShape...)
	inv := 1.0 / float64(h*w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			g := grad.Data[bi*c+ci] * inv
			fm := dx.Data[(bi*c+ci)*h*w : (bi*c+ci+1)*h*w]
			for i := range fm {
				fm[i] = g
			}
		}
	}
	return dx
}

// Params returns nil.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh layer.
func (p *GlobalAvgPool) Clone() Layer { return &GlobalAvgPool{} }

// Name returns the layer name.
func (p *GlobalAvgPool) Name() string { return "globalavgpool" }
