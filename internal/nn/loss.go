package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy couples the softmax activation with the negative
// log-likelihood loss, the standard classification head. Combining the two
// keeps the backward pass numerically trivial: dLogits = (softmax - onehot)/B.
type SoftmaxCrossEntropy struct{}

// Forward returns the mean cross-entropy loss over the batch and the softmax
// probabilities (one row per sample). logits must be [batch, classes] and
// labels must hold a class index per row.
func (SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	b, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != b {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), b))
	}
	probs := tensor.New(b, c)
	loss := 0.0
	for i := 0; i < b; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		prow := probs.Data[i*c : (i+1)*c]
		for j, v := range row {
			e := math.Exp(v - maxv)
			prow[j] = e
			sum += e
		}
		for j := range prow {
			prow[j] /= sum
		}
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		p := prow[y]
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
	}
	return loss / float64(b), probs
}

// Backward returns the gradient of the mean loss w.r.t. the logits given the
// probabilities produced by Forward.
func (SoftmaxCrossEntropy) Backward(probs *tensor.Tensor, labels []int) *tensor.Tensor {
	b, c := probs.Shape[0], probs.Shape[1]
	grad := probs.Clone()
	inv := 1.0 / float64(b)
	for i := 0; i < b; i++ {
		grad.Data[i*c+labels[i]] -= 1
	}
	grad.Scale(inv)
	return grad
}

// Predict returns the argmax class per row of logits (or probabilities).
func Predict(logits *tensor.Tensor) []int {
	b, c := logits.Shape[0], logits.Shape[1]
	out := make([]int, b)
	for i := 0; i < b; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
