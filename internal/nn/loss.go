package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy couples the softmax activation with the negative
// log-likelihood loss, the standard classification head. Combining the two
// keeps the backward pass numerically trivial: dLogits = (softmax - onehot)/B.
type SoftmaxCrossEntropy struct{}

// Forward returns the mean cross-entropy loss over the batch and the softmax
// probabilities (one row per sample). logits must be [batch, classes] and
// labels must hold a class index per row.
func (l SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	probs := tensor.New(logits.Shape[0], logits.Shape[1])
	return l.ForwardInto(probs, logits, labels), probs
}

// ForwardInto is Forward writing the softmax probabilities into probs (which
// must be shaped like logits) instead of allocating, returning the mean
// cross-entropy loss. The SGD inner loop pairs it with BackwardInPlace so
// the loss head stays allocation-free.
//
//lint:hotpath
func (SoftmaxCrossEntropy) ForwardInto(probs, logits *tensor.Tensor, labels []int) float64 {
	b, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != b {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), b))
	}
	if !probs.SameShape(logits) {
		panic(fmt.Sprintf("nn: ForwardInto probs %v, logits %v", probs.Shape, logits.Shape))
	}
	loss := 0.0
	for i := 0; i < b; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		prow := probs.Data[i*c : (i+1)*c]
		for j, v := range row {
			e := math.Exp(v - maxv)
			prow[j] = e
			sum += e
		}
		for j := range prow {
			prow[j] /= sum
		}
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		p := prow[y]
		if p < 1e-15 {
			p = 1e-15
		}
		loss -= math.Log(p)
	}
	return loss / float64(b)
}

// Backward returns the gradient of the mean loss w.r.t. the logits given the
// probabilities produced by Forward.
func (l SoftmaxCrossEntropy) Backward(probs *tensor.Tensor, labels []int) *tensor.Tensor {
	grad := probs.Clone()
	l.BackwardInPlace(grad, labels)
	return grad
}

// BackwardInPlace converts probs into the gradient of the mean loss w.r.t.
// the logits, in place: (softmax − onehot)/B. The probabilities are consumed;
// use Backward when they must survive.
//
//lint:hotpath
func (SoftmaxCrossEntropy) BackwardInPlace(probs *tensor.Tensor, labels []int) {
	b, c := probs.Shape[0], probs.Shape[1]
	inv := 1.0 / float64(b)
	for i := 0; i < b; i++ {
		probs.Data[i*c+labels[i]] -= 1
	}
	probs.Scale(inv)
}

// Predict returns the argmax class per row of logits (or probabilities).
func Predict(logits *tensor.Tensor) []int {
	b, c := logits.Shape[0], logits.Shape[1]
	out := make([]int, b)
	for i := 0; i < b; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
