package nn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// lossOf runs a forward pass and returns the mean cross-entropy loss.
func lossOf(m *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(x, true)
	loss, _ := SoftmaxCrossEntropy{}.Forward(logits, labels)
	return loss
}

// gradCheck verifies backprop gradients against central finite differences
// on a sample of parameter coordinates.
func gradCheck(t *testing.T, m *Sequential, x *tensor.Tensor, labels []int, samples int, tol float64) {
	t.Helper()
	// Analytic gradients.
	logits := m.Forward(x, true)
	loss := SoftmaxCrossEntropy{}
	_, probs := loss.Forward(logits, labels)
	m.Backward(loss.Backward(probs, labels))
	analytic := m.GradVector()

	params := m.ParamVector()
	rng := stats.NewRNG(99)
	const h = 1e-5
	for s := 0; s < samples; s++ {
		i := rng.IntN(len(params))
		orig := params[i]
		params[i] = orig + h
		m.SetParamVector(params)
		lp := lossOf(m, x, labels)
		params[i] = orig - h
		m.SetParamVector(params)
		lm := lossOf(m, x, labels)
		params[i] = orig
		m.SetParamVector(params)
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic[i]) > tol*(1+math.Abs(numeric)) {
			t.Errorf("grad mismatch at param %d: numeric %v, analytic %v", i, numeric, analytic[i])
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := stats.NewRNG(1)
	d := NewDense(2, 2, rng)
	d.W.Data = []float64{1, 2, 3, 4} // [[1,2],[3,4]]
	d.B.Data = []float64{10, 20}
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	//lint:ignore float-eq test asserts exact deterministic output
	if y.Data[0] != 14 || y.Data[1] != 26 {
		t.Fatalf("dense forward = %v, want [14 26]", y.Data)
	}
}

func TestGradCheckMLP(t *testing.T) {
	m := NewMLP(6, []int{8, 5}, 3, 7)
	rng := stats.NewRNG(2)
	x := tensor.New(4, 6)
	x.RandNormal(rng, 1)
	labels := []int{0, 2, 1, 2}
	gradCheck(t, m, x, labels, 60, 1e-4)
}

func TestGradCheckLogistic(t *testing.T) {
	m := NewLogistic(5, 4, 3)
	rng := stats.NewRNG(4)
	x := tensor.New(3, 5)
	x.RandNormal(rng, 1)
	gradCheck(t, m, x, []int{1, 3, 0}, 20, 1e-5)
}

func TestGradCheckConvNet(t *testing.T) {
	rng := stats.NewRNG(5)
	net := NewSequential(
		NewConv2D(2, 3, 3, 3, 1, 1, rng), NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(3*3*3, 4, rng),
	)
	x := tensor.New(2, 2, 6, 6)
	x.RandNormal(rng, 1)
	gradCheck(t, net, x, []int{0, 3}, 50, 1e-4)
}

func TestGradCheckResidualWithProjection(t *testing.T) {
	rng := stats.NewRNG(6)
	net := NewSequential(
		NewResidual(2, 4, rng), // projection path exercised (2 != 4)
		NewGlobalAvgPool(),
		NewDense(4, 3, rng),
	)
	x := tensor.New(2, 2, 4, 4)
	x.RandNormal(rng, 1)
	gradCheck(t, net, x, []int{2, 1}, 50, 1e-4)
}

func TestGradCheckResidualIdentity(t *testing.T) {
	rng := stats.NewRNG(8)
	net := NewSequential(
		NewResidual(3, 3, rng), // identity skip
		NewGlobalAvgPool(),
		NewDense(3, 2, rng),
	)
	x := tensor.New(2, 3, 4, 4)
	x.RandNormal(rng, 1)
	gradCheck(t, net, x, []int{0, 1}, 40, 1e-4)
}

func TestGradCheckResNetLite(t *testing.T) {
	m := NewResNetLite(1, 8, 8, 4, 11)
	rng := stats.NewRNG(12)
	x := tensor.New(2, 1, 8, 8)
	x.RandNormal(rng, 1)
	gradCheck(t, m, x, []int{3, 0}, 40, 2e-4)
}

func TestMaxPoolKnown(t *testing.T) {
	p := NewMaxPool2D(2)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, false)
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		//lint:ignore float-eq test asserts exact deterministic output
		if y.Data[i] != w {
			t.Fatalf("maxpool = %v, want %v", y.Data, want)
		}
	}
	// Backward routes gradient only to the max positions.
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := p.Backward(g)
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if sum != 4 {
		t.Fatalf("maxpool backward mass = %v, want 4", sum)
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if dx.Data[5] != 1 || dx.Data[7] != 1 || dx.Data[13] != 1 || dx.Data[15] != 1 {
		t.Fatalf("maxpool backward misrouted: %v", dx.Data)
	}
}

func TestGlobalAvgPoolKnown(t *testing.T) {
	p := NewGlobalAvgPool()
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := p.Forward(x, false)
	//lint:ignore float-eq test asserts exact deterministic output
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("gap = %v", y.Data)
	}
	dx := p.Backward(tensor.FromSlice([]float64{4, 8}, 1, 2))
	//lint:ignore float-eq test asserts exact deterministic output
	if dx.Data[0] != 1 || dx.Data[4] != 2 {
		t.Fatalf("gap backward = %v", dx.Data)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0, 0}, 1, 3)
	loss, probs := SoftmaxCrossEntropy{}.Forward(logits, []int{1})
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Errorf("uniform loss = %v, want ln 3", loss)
	}
	for _, p := range probs.Data {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("uniform probs = %v", probs.Data)
		}
	}
	// Gradient rows sum to zero.
	grad := SoftmaxCrossEntropy{}.Backward(probs, []int{1})
	sum := 0.0
	for _, g := range grad.Data {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("grad row sum = %v, want 0", sum)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 0}, 1, 2)
	loss, probs := SoftmaxCrossEntropy{}.Forward(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss overflow: %v", loss)
	}
	if probs.Data[0] < 0.999 {
		t.Fatalf("stability shift broke probs: %v", probs.Data)
	}
}

func TestPredict(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 3, 2, 9, 0, -1}, 2, 3)
	got := Predict(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	m := NewMLP(4, []int{5}, 3, 1)
	v := m.ParamVector()
	if len(v) != m.NumParams() {
		t.Fatalf("vector length %d, NumParams %d", len(v), m.NumParams())
	}
	for i := range v {
		v[i] = float64(i)
	}
	m.SetParamVector(v)
	got := m.ParamVector()
	for i := range v {
		//lint:ignore float-eq test asserts exact deterministic output
		if got[i] != v[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestSetParamVectorPanicsOnBadLength(t *testing.T) {
	m := NewLogistic(3, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetParamVector(make([]float64, 3))
}

func TestModelCloneIndependent(t *testing.T) {
	m := NewMLP(4, []int{6}, 3, 2)
	c := m.Clone()
	v := c.ParamVector()
	for i := range v {
		v[i] = 0
	}
	c.SetParamVector(v)
	for _, p := range m.ParamVector() {
		//lint:ignore float-eq test asserts exact deterministic output
		if p != 0 {
			return // original untouched, good
		}
	}
	t.Fatal("clone shares parameter storage with original")
}

func TestSGDReducesLoss(t *testing.T) {
	rng := stats.NewRNG(3)
	m := NewMLP(4, []int{8}, 2, 3)
	x := tensor.New(16, 4)
	labels := make([]int, 16)
	// Linearly separable toy data.
	for i := 0; i < 16; i++ {
		cls := i % 2
		for j := 0; j < 4; j++ {
			x.Data[i*4+j] = rng.Normal(float64(2*cls-1), 0.3)
		}
		labels[i] = cls
	}
	loss := SoftmaxCrossEntropy{}
	opt := NewSGD(0.5)
	first := lossOf(m, x, labels)
	for it := 0; it < 60; it++ {
		logits := m.Forward(x, true)
		_, probs := loss.Forward(logits, labels)
		m.Backward(loss.Backward(probs, labels))
		opt.Step(m)
	}
	last := lossOf(m, x, labels)
	if last >= first/4 {
		t.Fatalf("SGD failed to learn: loss %v -> %v", first, last)
	}
	preds := Predict(m.Forward(x, false))
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if correct < 15 {
		t.Fatalf("accuracy %d/16 on separable data", correct)
	}
}

func TestSGDMomentumAndDecay(t *testing.T) {
	m := NewLogistic(2, 2, 4)
	x := tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	labels := []int{0, 1}
	loss := SoftmaxCrossEntropy{}
	opt := &SGD{LR: 0.1, Momentum: 0.9, WeightDecay: 1e-3}
	first := lossOf(m, x, labels)
	for it := 0; it < 50; it++ {
		logits := m.Forward(x, true)
		_, probs := loss.Forward(logits, labels)
		m.Backward(loss.Backward(probs, labels))
		opt.Step(m)
	}
	if last := lossOf(m, x, labels); last >= first {
		t.Fatalf("momentum SGD failed: %v -> %v", first, last)
	}
}

func TestClipGradNorm(t *testing.T) {
	m := NewLogistic(2, 2, 5)
	x := tensor.FromSlice([]float64{5, -3, 2, 8}, 2, 2)
	labels := []int{0, 1}
	loss := SoftmaxCrossEntropy{}
	logits := m.Forward(x, true)
	_, probs := loss.Forward(logits, labels)
	m.Backward(loss.Backward(probs, labels))
	pre := ClipGradNorm(m, 1e-3)
	if pre <= 1e-3 {
		t.Skip("gradient already tiny")
	}
	// After clipping, global norm must be ~maxNorm.
	total := 0.0
	for _, g := range m.Grads() {
		n := g.Norm()
		total += n * n
	}
	if math.Abs(math.Sqrt(total)-1e-3) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1e-3", math.Sqrt(total))
	}
}

func TestNumParamsCounts(t *testing.T) {
	m := NewLogistic(10, 4, 1)
	if m.NumParams() != 10*4+4 {
		t.Fatalf("NumParams = %d, want 44", m.NumParams())
	}
}

func TestCNN5Shapes(t *testing.T) {
	m := NewCNN5(1, 16, 16, 35, 1)
	x := tensor.New(2, 1, 16, 16)
	y := m.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 35 {
		t.Fatalf("CNN5 output shape %v", y.Shape)
	}
}

func TestResNetLiteShapes(t *testing.T) {
	m := NewResNetLite(3, 8, 8, 10, 1)
	x := tensor.New(3, 3, 8, 8)
	y := m.Forward(x, false)
	if y.Shape[0] != 3 || y.Shape[1] != 10 {
		t.Fatalf("ResNetLite output shape %v", y.Shape)
	}
}

func TestSummary(t *testing.T) {
	m := NewMLP(4, []int{8}, 3, 1)
	s := m.Summary()
	if !strings.Contains(s, "dense") || !strings.Contains(s, "relu") || !strings.Contains(s, "total") {
		t.Fatalf("summary missing layers:\n%s", s)
	}
	// Total line must show NumParams.
	if !strings.Contains(s, "67 params") { // 4*8+8 + 8*3+3 = 40+27 = 67
		t.Fatalf("summary total wrong:\n%s", s)
	}
}
