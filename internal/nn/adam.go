package nn

import (
	"math"

	"repro/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba). The paper's experiments use
// plain SGD; Adam is provided for the library's standalone usefulness and
// for ablation benches on the local update rule.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t    int
	m, v []*tensor.Tensor
}

// NewAdam returns Adam with the canonical defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update using the model's accumulated gradients.
func (o *Adam) Step(model *Sequential) {
	params := model.Params()
	grads := model.Grads()
	if o.m == nil {
		o.m = make([]*tensor.Tensor, len(params))
		o.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			o.m[i] = tensor.New(p.Shape...)
			o.v[i] = tensor.New(p.Shape...)
		}
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		g := grads[i]
		m, v := o.m[i], o.v[i]
		for j := range p.Data {
			gj := g.Data[j]
			//lint:ignore float-eq WeightDecay 0 is the exact sentinel for "decay disabled"
			if o.WeightDecay != 0 {
				gj += o.WeightDecay * p.Data[j]
			}
			m.Data[j] = o.Beta1*m.Data[j] + (1-o.Beta1)*gj
			v.Data[j] = o.Beta2*v.Data[j] + (1-o.Beta2)*gj*gj
			mhat := m.Data[j] / c1
			vhat := v.Data[j] / c2
			p.Data[j] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// LRSchedule maps a step index to a learning rate.
type LRSchedule interface {
	// At returns the learning rate for step t (0-based).
	At(t int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR float64

// At returns the constant rate.
func (c ConstantLR) At(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Factor every Every steps.
type StepDecay struct {
	Base   float64
	Factor float64
	Every  int
}

// At returns Base·Factor^(t/Every).
func (s StepDecay) At(t int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(t/s.Every))
}

// CosineDecay anneals from Base to Floor over Horizon steps.
type CosineDecay struct {
	Base, Floor float64
	Horizon     int
}

// At returns the cosine-annealed rate, clamped at Floor past the horizon.
func (c CosineDecay) At(t int) float64 {
	if c.Horizon <= 0 || t >= c.Horizon {
		return c.Floor
	}
	cosv := 0.5 * (1 + math.Cos(math.Pi*float64(t)/float64(c.Horizon)))
	return c.Floor + (c.Base-c.Floor)*cosv
}
