package nn

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// trainStep runs one forward+backward+step on the model.
func trainStep(m *Sequential, x *tensor.Tensor, y []int, opt *SGD) {
	var loss SoftmaxCrossEntropy
	logits := m.Forward(x, true)
	_, probs := loss.Forward(logits, y)
	m.Backward(loss.Backward(probs, y))
	opt.Step(m)
}

func benchModel(b *testing.B, m *Sequential, shape []int, classes int) {
	b.Helper()
	rng := stats.NewRNG(1)
	x := tensor.New(shape...)
	x.RandNormal(rng, 1)
	y := make([]int, shape[0])
	for i := range y {
		y[i] = rng.IntN(classes)
	}
	opt := NewSGD(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainStep(m, x, y, opt)
	}
}

// BenchmarkTrainStepMLP measures one batch-32 training step of the
// experiment harness's MLP.
func BenchmarkTrainStepMLP(b *testing.B) {
	benchModel(b, NewMLP(24, []int{32}, 10, 1), []int{32, 24}, 10)
}

// BenchmarkTrainStepCNN5 measures one batch-16 step of the SC model.
func BenchmarkTrainStepCNN5(b *testing.B) {
	benchModel(b, NewCNN5(1, 12, 12, 35, 1), []int{16, 1, 12, 12}, 35)
}

// BenchmarkTrainStepResNetLite measures one batch-16 step of the CIFAR
// model.
func BenchmarkTrainStepResNetLite(b *testing.B) {
	benchModel(b, NewResNetLite(3, 8, 8, 10, 1), []int{16, 3, 8, 8}, 10)
}

// BenchmarkForwardResNetLite measures inference only.
func BenchmarkForwardResNetLite(b *testing.B) {
	m := NewResNetLite(3, 8, 8, 10, 1)
	rng := stats.NewRNG(2)
	x := tensor.New(32, 3, 8, 8)
	x.RandNormal(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

// BenchmarkParamVectorRoundTrip measures the flatten/restore path used by
// every aggregation.
func BenchmarkParamVectorRoundTrip(b *testing.B) {
	m := NewResNetLite(3, 8, 8, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := m.ParamVector()
		m.SetParamVector(v)
	}
}
