package nn

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// trainStep runs one forward+backward+step on the model.
func trainStep(m *Sequential, x *tensor.Tensor, y []int, opt *SGD) {
	var loss SoftmaxCrossEntropy
	logits := m.Forward(x, true)
	_, probs := loss.Forward(logits, y)
	m.Backward(loss.Backward(probs, y))
	opt.Step(m)
}

func benchModel(b *testing.B, m *Sequential, shape []int, classes int) {
	b.Helper()
	rng := stats.NewRNG(1)
	x := tensor.New(shape...)
	x.RandNormal(rng, 1)
	y := make([]int, shape[0])
	for i := range y {
		y[i] = rng.IntN(classes)
	}
	opt := NewSGD(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainStep(m, x, y, opt)
	}
}

// BenchmarkTrainStepMLP measures one batch-32 training step of the
// experiment harness's MLP.
func BenchmarkTrainStepMLP(b *testing.B) {
	benchModel(b, NewMLP(24, []int{32}, 10, 1), []int{32, 24}, 10)
}

// BenchmarkTrainStepCNN5 measures one batch-16 step of the SC model.
func BenchmarkTrainStepCNN5(b *testing.B) {
	benchModel(b, NewCNN5(1, 12, 12, 35, 1), []int{16, 1, 12, 12}, 35)
}

// BenchmarkTrainStepResNetLite measures one batch-16 step of the CIFAR
// model.
func BenchmarkTrainStepResNetLite(b *testing.B) {
	benchModel(b, NewResNetLite(3, 8, 8, 10, 1), []int{16, 3, 8, 8}, 10)
}

// BenchmarkForwardResNetLite measures inference only.
func BenchmarkForwardResNetLite(b *testing.B) {
	m := NewResNetLite(3, 8, 8, 10, 1)
	rng := stats.NewRNG(2)
	x := tensor.New(32, 3, 8, 8)
	x.RandNormal(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

// BenchmarkTrainStepMLPReuse measures the same MLP step with buffer reuse
// and the in-place loss head — the training engine's zero-alloc hot path.
func BenchmarkTrainStepMLPReuse(b *testing.B) {
	m := NewMLP(24, []int{32}, 10, 1)
	m.EnableBufferReuse()
	rng := stats.NewRNG(1)
	x := tensor.New(32, 24)
	x.RandNormal(rng, 1)
	y := make([]int, 32)
	for i := range y {
		y[i] = rng.IntN(10)
	}
	opt := NewSGD(0.05)
	var loss SoftmaxCrossEntropy
	probs := tensor.New(32, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(x, true)
		loss.ForwardInto(probs, logits, y)
		loss.BackwardInPlace(probs, y)
		m.Backward(probs)
		opt.Step(m)
	}
}

// BenchmarkParamVectorInto measures the reused-buffer flatten against the
// allocating BenchmarkParamVectorRoundTrip baseline.
func BenchmarkParamVectorInto(b *testing.B) {
	m := NewResNetLite(3, 8, 8, 10, 1)
	buf := make([]float64, m.NumParams())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.ParamVectorInto(buf)
		m.SetParamVector(buf)
	}
}

// BenchmarkParamVectorRoundTrip measures the flatten/restore path used by
// every aggregation.
func BenchmarkParamVectorRoundTrip(b *testing.B) {
	m := NewResNetLite(3, 8, 8, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := m.ParamVector()
		m.SetParamVector(v)
	}
}
