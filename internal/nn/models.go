package nn

import "repro/internal/stats"

// NewMLP builds a multi-layer perceptron: in → hidden... → classes with ReLU
// between dense layers. The experiment harness uses MLPs where the paper's
// findings depend on the federated dynamics rather than the model family,
// because they train an order of magnitude faster in pure Go.
func NewMLP(in int, hidden []int, classes int, seed uint64) *Sequential {
	rng := stats.NewRNG(seed)
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, rng))
	return NewSequential(layers...)
}

// NewCNN5 builds the lightweight 5-layer CNN the paper trains on
// SpeechCommands: two conv+pool stages, then a two-layer classifier head.
// Input is [batch, c, h, w].
func NewCNN5(c, h, w, classes int, seed uint64) *Sequential {
	rng := stats.NewRNG(seed)
	conv1 := NewConv2D(c, 8, 3, 3, 1, 1, rng)
	conv2 := NewConv2D(8, 16, 3, 3, 1, 1, rng)
	// Two 2x2 pools shrink h×w by 4 in each dimension.
	fh, fw := h/2/2, w/2/2
	return NewSequential(
		conv1, NewReLU(), NewMaxPool2D(2),
		conv2, NewReLU(), NewMaxPool2D(2),
		NewFlatten(),
		NewDense(16*fh*fw, 64, rng), NewReLU(),
		NewDense(64, classes, rng),
	)
}

// NewResNetLite builds the "3-block ResNet" the paper trains on CIFAR-10,
// scaled to the synthetic image sizes used here: a conv stem, three residual
// blocks with channel growth and one spatial downsample, global average
// pooling, and a dense classifier.
func NewResNetLite(c, h, w, classes int, seed uint64) *Sequential {
	rng := stats.NewRNG(seed)
	stem := NewConv2D(c, 16, 3, 3, 1, 1, rng)
	return NewSequential(
		stem, NewReLU(),
		NewResidual(16, 16, rng),
		NewMaxPool2D(2),
		NewResidual(16, 32, rng),
		NewResidual(32, 32, rng),
		NewGlobalAvgPool(),
		NewDense(32, classes, rng),
	)
}

// NewLogistic builds a linear softmax classifier (no hidden layers), the
// cheapest model that still exhibits non-IID divergence. Used by fast tests.
func NewLogistic(in, classes int, seed uint64) *Sequential {
	rng := stats.NewRNG(seed)
	return NewSequential(NewDense(in, classes, rng))
}
