package nn

import (
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Residual is a basic pre-classifier residual block:
//
//	y = ReLU( conv2(ReLU(conv1(x))) + skip(x) )
//
// where skip is the identity when input and output channels match, and a
// 1×1 convolution otherwise. This is the building block of the "3-block
// ResNet" the paper trains on CIFAR-10.
type Residual struct {
	Conv1, Conv2 *Conv2D
	Proj         *Conv2D // nil for identity skip
	relu1, relu2 *ReLU
}

// NewResidual builds a residual block mapping inC to outC channels with 3×3
// kernels and same-padding.
func NewResidual(inC, outC int, rng *stats.RNG) *Residual {
	r := &Residual{
		Conv1: NewConv2D(inC, outC, 3, 3, 1, 1, rng),
		Conv2: NewConv2D(outC, outC, 3, 3, 1, 1, rng),
		relu1: NewReLU(),
		relu2: NewReLU(),
	}
	if inC != outC {
		r.Proj = NewConv2D(inC, outC, 1, 1, 1, 0, rng)
	}
	return r
}

func (r *Residual) setBufferReuse(on bool) {
	r.relu1.setBufferReuse(on)
	r.relu2.setBufferReuse(on)
	r.Conv1.setBufferReuse(on)
	r.Conv2.setBufferReuse(on)
	if r.Proj != nil {
		r.Proj.setBufferReuse(on)
	}
}

// Forward runs the block.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := r.relu1.Forward(r.Conv1.Forward(x, train), train)
	y := r.Conv2.Forward(h, train)
	var skip *tensor.Tensor
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	} else {
		skip = x
	}
	y.Add(skip)
	return r.relu2.Forward(y, train)
}

// Backward propagates through both the residual and skip paths.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dy := r.relu2.Backward(grad)
	dh := r.Conv2.Backward(dy)
	dx := r.Conv1.Backward(r.relu1.Backward(dh))
	if r.Proj != nil {
		dx.Add(r.Proj.Backward(dy))
	} else {
		dx.Add(dy)
	}
	return dx
}

// Params returns the parameters of all inner convolutions.
func (r *Residual) Params() []*tensor.Tensor {
	out := append(r.Conv1.Params(), r.Conv2.Params()...)
	if r.Proj != nil {
		out = append(out, r.Proj.Params()...)
	}
	return out
}

// Grads returns the gradients of all inner convolutions.
func (r *Residual) Grads() []*tensor.Tensor {
	out := append(r.Conv1.Grads(), r.Conv2.Grads()...)
	if r.Proj != nil {
		out = append(out, r.Proj.Grads()...)
	}
	return out
}

// Clone deep-copies the block.
func (r *Residual) Clone() Layer {
	out := &Residual{
		Conv1: r.Conv1.Clone().(*Conv2D),
		Conv2: r.Conv2.Clone().(*Conv2D),
		relu1: NewReLU(),
		relu2: NewReLU(),
	}
	if r.Proj != nil {
		out.Proj = r.Proj.Clone().(*Conv2D)
	}
	return out
}

// Name returns the layer name.
func (r *Residual) Name() string { return "residual" }
