package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalizes activations per feature (2-D inputs [B, F]) or per
// channel (4-D inputs [B, C, H, W]), with learned scale γ and shift β.
// Training uses batch statistics and maintains running estimates;
// evaluation uses the running estimates, so federated clients that train
// on tiny batches still evaluate consistently.
type BatchNorm struct {
	Features int
	Eps      float64
	Momentum float64

	Gamma, Beta   *tensor.Tensor
	dGamma, dBeta *tensor.Tensor
	// RunMean and RunVar are the running statistics (part of the layer's
	// parameters for cloning purposes but not trained by gradient).
	RunMean, RunVar *tensor.Tensor

	// caches
	xhat     *tensor.Tensor
	std      []float64
	inShape  []int
	groups   int // B*H*W: elements per feature in the last batch
	zeroRun1 *tensor.Tensor
	zeroRun2 *tensor.Tensor
}

// NewBatchNorm creates a batch normalization layer over the given feature
// (or channel) count.
func NewBatchNorm(features int) *BatchNorm {
	bn := &BatchNorm{
		Features: features, Eps: 1e-5, Momentum: 0.1,
		Gamma: tensor.New(features), Beta: tensor.New(features),
		dGamma: tensor.New(features), dBeta: tensor.New(features),
		RunMean: tensor.New(features), RunVar: tensor.New(features),
	}
	bn.Gamma.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// layout returns (perFeature, stride, spatial) describing how feature f's
// elements are laid out: for [B,F] spatial=1; for [B,C,H,W] spatial=H*W.
func (bn *BatchNorm) layout(x *tensor.Tensor) (batch, spatial int) {
	switch x.Rank() {
	case 2:
		if x.Shape[1] != bn.Features {
			panic(fmt.Sprintf("nn: batchnorm expects %d features, got %v", bn.Features, x.Shape))
		}
		return x.Shape[0], 1
	case 4:
		if x.Shape[1] != bn.Features {
			panic(fmt.Sprintf("nn: batchnorm expects %d channels, got %v", bn.Features, x.Shape))
		}
		return x.Shape[0], x.Shape[2] * x.Shape[3]
	}
	panic(fmt.Sprintf("nn: batchnorm supports rank 2 or 4, got %v", x.Shape))
}

// forEach visits every element of feature f in x.
func (bn *BatchNorm) forEach(x *tensor.Tensor, batch, spatial, f int, fn func(idx int)) {
	for b := 0; b < batch; b++ {
		base := (b*bn.Features + f) * spatial
		for s := 0; s < spatial; s++ {
			fn(base + s)
		}
	}
}

// Forward normalizes the batch.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, spatial := bn.layout(x)
	n := float64(batch * spatial)
	out := x.Clone()
	bn.inShape = append(bn.inShape[:0], x.Shape...)
	bn.groups = batch * spatial
	if bn.xhat == nil || bn.xhat.Size() != x.Size() {
		bn.xhat = tensor.New(x.Shape...)
	} else {
		bn.xhat = bn.xhat.Reshape(x.Shape...)
	}
	if bn.std == nil || len(bn.std) != bn.Features {
		bn.std = make([]float64, bn.Features)
	}
	for f := 0; f < bn.Features; f++ {
		var mean, vr float64
		if train {
			sum := 0.0
			bn.forEach(x, batch, spatial, f, func(i int) { sum += x.Data[i] })
			mean = sum / n
			ss := 0.0
			bn.forEach(x, batch, spatial, f, func(i int) {
				d := x.Data[i] - mean
				ss += d * d
			})
			vr = ss / n
			bn.RunMean.Data[f] = (1-bn.Momentum)*bn.RunMean.Data[f] + bn.Momentum*mean
			bn.RunVar.Data[f] = (1-bn.Momentum)*bn.RunVar.Data[f] + bn.Momentum*vr
		} else {
			mean, vr = bn.RunMean.Data[f], bn.RunVar.Data[f]
		}
		std := math.Sqrt(vr + bn.Eps)
		bn.std[f] = std
		g, b := bn.Gamma.Data[f], bn.Beta.Data[f]
		bn.forEach(x, batch, spatial, f, func(i int) {
			xh := (x.Data[i] - mean) / std
			bn.xhat.Data[i] = xh
			out.Data[i] = g*xh + b
		})
	}
	return out
}

// Backward computes gradients for γ, β, and the input using the standard
// batch-norm backward pass.
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	batch, spatial := bn.layout(grad)
	n := float64(batch * spatial)
	dx := tensor.New(bn.inShape...)
	for f := 0; f < bn.Features; f++ {
		var sumDy, sumDyXhat float64
		bn.forEach(grad, batch, spatial, f, func(i int) {
			sumDy += grad.Data[i]
			sumDyXhat += grad.Data[i] * bn.xhat.Data[i]
		})
		bn.dGamma.Data[f] += sumDyXhat
		bn.dBeta.Data[f] += sumDy
		g := bn.Gamma.Data[f]
		std := bn.std[f]
		bn.forEach(grad, batch, spatial, f, func(i int) {
			dx.Data[i] = g / std * (grad.Data[i] - sumDy/n - bn.xhat.Data[i]*sumDyXhat/n)
		})
	}
	return dx
}

// Params returns [Gamma, Beta]. Running statistics are not gradient-trained
// but are part of the federated parameter vector so aggregation keeps
// clients' normalizers in sync — include them.
func (bn *BatchNorm) Params() []*tensor.Tensor {
	return []*tensor.Tensor{bn.Gamma, bn.Beta, bn.RunMean, bn.RunVar}
}

// Grads returns gradients aligned with Params (running stats get pinned
// zero gradients: SGD leaves them unchanged, which is what we want).
func (bn *BatchNorm) Grads() []*tensor.Tensor {
	if bn.zeroRun1 == nil {
		bn.zeroRun1 = tensor.New(bn.Features)
		bn.zeroRun2 = tensor.New(bn.Features)
	}
	return []*tensor.Tensor{bn.dGamma, bn.dBeta, bn.zeroRun1, bn.zeroRun2}
}

// Clone deep-copies the layer.
func (bn *BatchNorm) Clone() Layer {
	out := NewBatchNorm(bn.Features)
	out.Eps, out.Momentum = bn.Eps, bn.Momentum
	out.Gamma = bn.Gamma.Clone()
	out.Beta = bn.Beta.Clone()
	out.RunMean = bn.RunMean.Clone()
	out.RunVar = bn.RunVar.Clone()
	return out
}

// Name returns the layer name.
func (bn *BatchNorm) Name() string { return "batchnorm" }
