package nn

import (
	"math"

	"repro/internal/tensor"
)

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh and caches the outputs for the backward pass.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.out = out
	return out
}

// Backward multiplies by 1 − tanh².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		y := t.out.Data[i]
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params returns nil.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh Tanh.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Name returns the layer name.
func (t *Tanh) Name() string { return "tanh" }

// Sigmoid applies the logistic function element-wise.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies 1/(1+e^-x).
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.out = out
	return out
}

// Backward multiplies by σ(1−σ).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		y := s.out.Data[i]
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params returns nil.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh Sigmoid.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Name returns the layer name.
func (s *Sigmoid) Name() string { return "sigmoid" }

// LeakyReLU applies max(αx, x) element-wise.
type LeakyReLU struct {
	Alpha float64
	in    *tensor.Tensor
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the piecewise-linear map and caches the input.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.in = x
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = l.Alpha * v
		}
	}
	return out
}

// Backward scales gradients on the negative side by α.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if l.in.Data[i] < 0 {
			out.Data[i] *= l.Alpha
		}
	}
	return out
}

// Params returns nil.
func (l *LeakyReLU) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (l *LeakyReLU) Grads() []*tensor.Tensor { return nil }

// Clone returns a fresh layer with the same slope.
func (l *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: l.Alpha} }

// Name returns the layer name.
func (l *LeakyReLU) Name() string { return "leakyrelu" }
