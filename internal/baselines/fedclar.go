package baselines

import (
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/stats"
)

// TrainFedCLAR runs the FedCLAR-style personalized baseline: phase one is
// plain hierarchical FedAvg; at the clustering round, clients are grouped by
// the similarity of their local update directions; phase two trains one
// model per cluster on that cluster's clients only. Reported accuracy is the
// data-weighted accuracy of the cluster models on the *global* test set —
// which is exactly why the paper's Fig. 9 shows FedCLAR dropping after its
// clustering round: personalized models stop tracking the global task.
func TrainFedCLAR(sys *core.System, cfg core.Config, opts Options) *core.Result {
	clusterRound := opts.FedCLARClusterRound
	if clusterRound <= 0 || clusterRound >= cfg.GlobalRounds {
		clusterRound = cfg.GlobalRounds / 2
	}
	if clusterRound < 1 {
		clusterRound = 1
	}
	k := opts.FedCLARClusters
	if k < 2 {
		k = 2
	}

	// Phase 1: FedAvg-style warmup.
	p1 := cfg
	p1.GlobalRounds = clusterRound
	phase1 := core.Train(sys, p1)

	// Clustering: one local epoch per client from the shared model; cluster
	// the update directions.
	deltas := clientDeltas(sys, cfg, phase1.Params)
	assign := kmeansCosine(deltas, k, stats.NewRNG(cfg.Seed^0xfedc1a5))

	clusters := make([][]*data.Client, k)
	for i, c := range sys.Clients {
		clusters[assign[i]] = append(clusters[assign[i]], c)
	}

	// Phase 2: per-cluster training, continuing from the shared model.
	remaining := cfg.GlobalRounds - clusterRound
	type clusterRun struct {
		res    *core.Result
		weight float64
	}
	var runs []clusterRun
	totalData := 0.0
	for _, cl := range clusters {
		if len(cl) == 0 {
			continue
		}
		sub := sys.SubSystem(cl, len(sys.Edges))
		p2 := cfg
		p2.GlobalRounds = remaining
		p2.InitParams = phase1.Params
		p2.CostBudget = 0 // budget is enforced by the caller over the merge
		p2.Seed = cfg.Seed ^ uint64(len(runs)+1)*0x9e3779b97f4a7c15
		w := 0.0
		for _, c := range cl {
			w += float64(c.NumSamples())
		}
		totalData += w
		runs = append(runs, clusterRun{res: core.Train(sub, p2), weight: w})
	}

	// Merge: phase-1 records verbatim, then per-round weighted accuracy and
	// summed cost across clusters.
	out := &core.Result{Records: append([]core.RoundRecord(nil), phase1.Records...)}
	baseCost := phase1.TotalCost
	for r := 0; r < remaining; r++ {
		rec := core.RoundRecord{Round: clusterRound + r, Cost: baseCost}
		accNum, lossNum, covNum := 0.0, 0.0, 0.0
		evaluated := true
		for _, cr := range runs {
			rr := recordAt(cr.res, r)
			rec.Cost += rr.Cost
			if rr.Accuracy < 0 {
				evaluated = false
			}
			accNum += cr.weight * rr.Accuracy
			lossNum += cr.weight * rr.Loss
			covNum += cr.weight * rr.AvgSelectedCoV
		}
		if evaluated && totalData > 0 {
			rec.Accuracy = accNum / totalData
			rec.Loss = lossNum / totalData
			rec.AvgSelectedCoV = covNum / totalData
		} else {
			rec.Accuracy, rec.Loss = -1, -1
		}
		out.Records = append(out.Records, rec)
	}

	finalAcc, finalLoss, finalCost := 0.0, 0.0, baseCost
	for _, cr := range runs {
		finalAcc += cr.weight * cr.res.FinalAccuracy
		finalLoss += cr.weight * cr.res.FinalLoss
		finalCost += cr.res.TotalCost
	}
	if totalData > 0 {
		finalAcc /= totalData
		finalLoss /= totalData
	}
	out.FinalAccuracy = finalAcc
	out.FinalLoss = finalLoss
	out.TotalCost = finalCost
	out.RoundsRun = cfg.GlobalRounds
	out.Groups = phase1.Groups
	out.Probs = phase1.Probs
	out.Params = phase1.Params
	return out
}

// clientDeltas trains each client one epoch from params and returns the
// parameter deltas.
func clientDeltas(sys *core.System, cfg core.Config, params []float64) [][]float64 {
	deltas := make([][]float64, len(sys.Clients))
	updater := core.SGDUpdater{}
	model := sys.NewModel(sys.ModelSeed)
	for i, c := range sys.Clients {
		model.SetParamVector(params)
		x, y := sys.ClientBatch(c)
		updater.LocalTrain(model, x, y, core.LocalContext{
			ClientID: c.ID, Anchor: params,
			Epochs: 1, BatchSize: cfg.BatchSize, LR: cfg.LR,
			Rng: stats.NewRNG(cfg.Seed ^ uint64(c.ID+1)*0xc2b2ae3d27d4eb4f),
		})
		after := model.ParamVector()
		d := make([]float64, len(params))
		for j := range d {
			d[j] = after[j] - params[j]
		}
		deltas[i] = d
	}
	return deltas
}

// kmeansCosine clusters unit-normalized vectors with k-means.
func kmeansCosine(vecs [][]float64, k int, rng *stats.RNG) []int {
	n := len(vecs)
	if k > n {
		k = n
	}
	normed := make([][]float64, n)
	for i, v := range vecs {
		nv := append([]float64(nil), v...)
		norm := 0.0
		for _, x := range nv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for j := range nv {
				nv[j] /= norm
			}
		}
		normed[i] = nv
	}
	perm := rng.Perm(n)
	centroids := make([][]float64, k)
	for i := 0; i < k; i++ {
		centroids[i] = append([]float64(nil), normed[perm[i]]...)
	}
	assign := make([]int, n)
	for it := 0; it < 15; it++ {
		changed := false
		for i, v := range normed {
			best, bestD := 0, math.Inf(1)
			for ci, cen := range centroids {
				d := stats.L2Distance(v, cen)
				if d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		counts := make([]int, k)
		for ci := range centroids {
			for j := range centroids[ci] {
				centroids[ci][j] = 0
			}
		}
		for i, v := range normed {
			ci := assign[i]
			counts[ci]++
			for j, x := range v {
				centroids[ci][j] += x
			}
		}
		for ci := range centroids {
			if counts[ci] > 0 {
				for j := range centroids[ci] {
					centroids[ci][j] /= float64(counts[ci])
				}
			}
		}
	}
	return assign
}

// recordAt returns the r-th record of res, clamping to the last one when a
// cluster run stopped early.
func recordAt(res *core.Result, r int) core.RoundRecord {
	if len(res.Records) == 0 {
		return core.RoundRecord{Accuracy: -1, Loss: -1}
	}
	if r >= len(res.Records) {
		return res.Records[len(res.Records)-1]
	}
	return res.Records[r]
}
