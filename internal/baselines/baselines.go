// Package baselines wires the comparison methods of the paper's evaluation
// (Sec. 7.3) on top of the fel trainer: FedAvg, FedProx, and SCAFFOLD with
// random grouping and uniform sampling; OUEA (CDG formation) and SHARE
// (KLDG formation); the paper's Group-FEL (CoVG + ESRCoV); and FedCLAR, the
// personalized clustering method with its own two-phase loop.
//
// All methods are "modified to a hierarchical version with uniform group
// sampling" exactly as the paper describes, so the only differences under
// test are formation, sampling, and the local update rule.
package baselines

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/grouping"
	"repro/internal/sampling"
)

// Name identifies a baseline method.
type Name string

// The methods compared in Figs. 9–11.
const (
	FedAvg   Name = "FedAvg"
	FedProx  Name = "FedProx"
	Scaffold Name = "SCAFFOLD"
	GroupFEL Name = "Group-FEL"
	OUEA     Name = "OUEA"
	SHARE    Name = "SHARE"
	FedCLAR  Name = "FedCLAR"
)

// All lists the methods in the paper's legend order.
func All() []Name {
	return []Name{FedAvg, FedProx, Scaffold, GroupFEL, OUEA, SHARE, FedCLAR}
}

// Options tunes the method-specific knobs.
type Options struct {
	// ProxMu is FedProx's proximal coefficient.
	ProxMu float64
	// NumClients is the population size (SCAFFOLD's server variate scale).
	NumClients int
	// TargetGS is the group size the random formations are tuned to (the
	// paper tunes the RG-based baselines toward CoVG-like sizes).
	TargetGS int
	// EdgeAggregatorSize is the group size for OUEA and SHARE: the paper
	// notes both "consider each edge server as one single aggregator ...
	// and do not limit the number of clients", so their groups span the
	// whole edge (clients/edges). Zero keeps that behaviour off and sizes
	// them like the others.
	EdgeAggregatorSize int
	// MinGS and MaxCoV configure CoVG for the Group-FEL method.
	MinGS  int
	MaxCoV float64
	// FedCLARClusterRound is the global round at which FedCLAR clusters;
	// FedCLARClusters the number of clusters.
	FedCLARClusterRound int
	FedCLARClusters     int
}

// DefaultOptions mirrors the paper's experiment setup at the given scale.
func DefaultOptions(numClients, targetGS int) Options {
	return Options{
		ProxMu:              0.1,
		NumClients:          numClients,
		TargetGS:            targetGS,
		MinGS:               targetGS,
		MaxCoV:              0.5,
		FedCLARClusterRound: 0, // 0 = GlobalRounds/2
		FedCLARClusters:     4,
	}
}

// Configure returns the core.Config for the named method, derived from base.
// base must already carry T/K/E, LR, S, seed, and cost profile; Configure
// overrides formation, sampling, weighting, local update, and cost ops.
func Configure(method Name, base core.Config, opts Options) core.Config {
	cfg := base
	cfg.Weights = sampling.Biased
	cfg.Sampling = sampling.Random
	cfg.Local = nil
	cfg.CostOps = cost.DefaultOps()
	rg := grouping.RandomGrouping{Config: grouping.Config{MinGS: opts.TargetGS}, TargetGS: opts.TargetGS}
	switch method {
	case FedAvg:
		cfg.Grouping = rg
	case FedProx:
		cfg.Grouping = rg
		cfg.Local = core.ProxUpdater{Mu: opts.ProxMu}
		// FedProx evaluates the proximal term on every step — extra
		// computation the paper charges ("FedProx and SCAFFOLD demand more
		// computation (both)", Sec. 7.3.1).
		cfg.CostProfile = scaleTraining(cfg.CostProfile, 1.15)
	case Scaffold:
		cfg.Grouping = rg
		cfg.Local = &core.ScaffoldUpdater{NumClients: opts.NumClients}
		// SCAFFOLD applies control-variate corrections per step and
		// refreshes c_i per round (extra compute), plus the double-payload
		// SecAgg below.
		cfg.CostProfile = scaleTraining(cfg.CostProfile, 1.3)
		cfg.CostOps = cost.OpSet{SecAgg: true, Backdoor: true, Scaffold: true}
	case GroupFEL:
		cfg.Grouping = grouping.CoVGrouping{Config: grouping.Config{
			MinGS: opts.MinGS, MaxCoV: opts.MaxCoV, MergeLeftover: true}}
		cfg.Sampling = sampling.ESRCoV
	case OUEA:
		gs := opts.TargetGS
		if opts.EdgeAggregatorSize > 0 {
			gs = opts.EdgeAggregatorSize
		}
		cfg.Grouping = grouping.CDGrouping{Config: grouping.Config{MinGS: gs}, TargetGS: gs}
	case SHARE:
		gs := opts.TargetGS
		if opts.EdgeAggregatorSize > 0 {
			gs = opts.EdgeAggregatorSize
		}
		cfg.Grouping = grouping.KLDGrouping{Config: grouping.Config{MinGS: gs, MergeLeftover: true}, TargetGS: gs}
	case FedCLAR:
		// FedCLAR's first phase is FedAvg-style; its clustering phase is
		// handled by TrainFedCLAR, not Configure.
		cfg.Grouping = rg
	default:
		panic("baselines: unknown method " + string(method))
	}
	return cfg
}

// scaleTraining returns a copy of p with the training cost scaled by k,
// used to charge the per-step overhead of heavier local update rules.
func scaleTraining(p cost.Profile, k float64) cost.Profile {
	p.TrainPerSample *= k
	p.TrainBase *= k
	return p
}

// Run trains the named method and returns its result. FedCLAR dispatches to
// its two-phase loop; every other method runs the standard fel trainer.
func Run(method Name, sys *core.System, base core.Config, opts Options) *core.Result {
	if method == FedCLAR {
		return TrainFedCLAR(sys, Configure(method, base, opts), opts)
	}
	return core.Train(sys, Configure(method, base, opts))
}
