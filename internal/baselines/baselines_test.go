package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func newTestRNG() *stats.RNG { return stats.NewRNG(1) }

func testSystem(numClients int, alpha float64, seed uint64) *core.System {
	gen := data.FlatConfig(4, 10, seed)
	gen.Noise = 0.8
	return core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: numClients, Alpha: alpha,
			MinSamples: 10, MaxSamples: 40, MeanSamples: 25, StdSamples: 8,
			Seed: seed + 1,
		},
		NumEdges:  2,
		TestSize:  300,
		NewModel:  func(s uint64) *nn.Sequential { return nn.NewMLP(10, []int{16}, 4, s) },
		ModelSeed: 7,
	})
}

func baseConfig() core.Config {
	return core.Config{
		GlobalRounds: 8, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 16, LR: 0.05, SampleGroups: 3,
		Seed:        11,
		CostProfile: cost.CIFARProfile(),
	}
}

func TestConfigureAllMethods(t *testing.T) {
	opts := DefaultOptions(12, 3)
	base := baseConfig()
	for _, m := range All() {
		cfg := Configure(m, base, opts)
		if cfg.Grouping == nil {
			t.Errorf("%s: nil grouping", m)
		}
		switch m {
		case GroupFEL:
			if cfg.Sampling != sampling.ESRCoV {
				t.Errorf("Group-FEL should use ESRCoV")
			}
			if _, ok := cfg.Grouping.(grouping.CoVGrouping); !ok {
				t.Errorf("Group-FEL should use CoVG")
			}
		case Scaffold:
			if !cfg.CostOps.Scaffold {
				t.Errorf("SCAFFOLD must pay double-payload SecAgg")
			}
			if _, ok := cfg.Local.(*core.ScaffoldUpdater); !ok {
				t.Errorf("SCAFFOLD local updater missing")
			}
		case FedProx:
			if _, ok := cfg.Local.(core.ProxUpdater); !ok {
				t.Errorf("FedProx local updater missing")
			}
		case OUEA:
			if _, ok := cfg.Grouping.(grouping.CDGrouping); !ok {
				t.Errorf("OUEA should use CDG")
			}
		case SHARE:
			if _, ok := cfg.Grouping.(grouping.KLDGrouping); !ok {
				t.Errorf("SHARE should use KLDG")
			}
		default:
			if cfg.Sampling != sampling.Random {
				t.Errorf("%s should use Random sampling", m)
			}
		}
	}
}

func TestConfigureUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Configure(Name("nope"), baseConfig(), DefaultOptions(10, 3))
}

func TestRunEveryMethodLearns(t *testing.T) {
	opts := DefaultOptions(12, 3)
	for _, m := range All() {
		sys := testSystem(12, 0.4, 21)
		res := Run(m, sys, baseConfig(), opts)
		if res == nil || len(res.Records) == 0 {
			t.Fatalf("%s: empty result", m)
		}
		if res.FinalAccuracy <= 0.3 {
			t.Errorf("%s: final accuracy %.3f (chance 0.25)", m, res.FinalAccuracy)
		}
	}
}

func TestFedCLARTwoPhaseRecords(t *testing.T) {
	sys := testSystem(12, 0.3, 31)
	base := baseConfig()
	opts := DefaultOptions(12, 3)
	opts.FedCLARClusterRound = 4
	res := Run(FedCLAR, sys, base, opts)
	if len(res.Records) != base.GlobalRounds {
		t.Fatalf("got %d records, want %d", len(res.Records), base.GlobalRounds)
	}
	// Cost keeps accumulating across the phase boundary.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Cost <= res.Records[i-1].Cost {
			t.Fatalf("cost not increasing at round %d", i)
		}
	}
	// Rounds numbered consecutively.
	for i, r := range res.Records {
		if r.Round != i {
			t.Fatalf("round %d labeled %d", i, r.Round)
		}
	}
}

func TestFedCLARClusterRoundDefault(t *testing.T) {
	sys := testSystem(10, 0.3, 41)
	base := baseConfig()
	base.GlobalRounds = 6
	opts := DefaultOptions(10, 3)
	opts.FedCLARClusterRound = 0 // default: half
	res := TrainFedCLAR(sys, Configure(FedCLAR, base, opts), opts)
	if res.RoundsRun != 6 || len(res.Records) != 6 {
		t.Fatalf("rounds=%d records=%d", res.RoundsRun, len(res.Records))
	}
}

func TestKmeansCosine(t *testing.T) {
	// Two obvious direction clusters.
	vecs := [][]float64{
		{1, 0}, {0.9, 0.1}, {1, -0.1},
		{-1, 0}, {-0.9, 0.1}, {-1, -0.1},
	}
	assign := kmeansCosine(vecs, 2, newTestRNG())
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("first cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("second cluster split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("clusters merged: %v", assign)
	}
}

func TestKmeansCosineDegenerate(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}}
	assign := kmeansCosine(vecs, 5, newTestRNG()) // k > n clamps
	if len(assign) != 2 {
		t.Fatal("assignment length wrong")
	}
	zero := [][]float64{{0, 0}, {0, 0}}
	if got := kmeansCosine(zero, 2, newTestRNG()); len(got) != 2 {
		t.Fatal("zero vectors should still be assigned")
	}
}

func TestRecordAtClamps(t *testing.T) {
	res := &core.Result{Records: []core.RoundRecord{{Round: 0, Accuracy: 0.5}}}
	//lint:ignore float-eq test asserts exact deterministic output
	if recordAt(res, 5).Accuracy != 0.5 {
		t.Fatal("clamp failed")
	}
	//lint:ignore float-eq test asserts exact deterministic output
	if recordAt(&core.Result{}, 0).Accuracy != -1 {
		t.Fatal("empty result should yield sentinel")
	}
}
