package secagg

import "fmt"

// Quantizer maps float64 update vectors to field elements and back via
// signed fixed-point encoding. Values are clipped to [−Clip, Clip] and
// scaled by Scale; negative values wrap modulo P. Correct dequantization of
// a sum of k vectors requires k·Clip·Scale < P/2, which Check enforces.
type Quantizer struct {
	// Scale is the fixed-point multiplier (resolution = 1/Scale).
	Scale float64
	// Clip bounds each coordinate's absolute value before encoding.
	Clip float64
}

// DefaultQuantizer gives ~1e-6 resolution with generous headroom: sums of
// up to ~10⁵ clipped updates decode exactly.
func DefaultQuantizer() Quantizer { return Quantizer{Scale: 1 << 20, Clip: 8} }

// Check panics if a sum over parties vectors could overflow the field's
// signed range.
func (q Quantizer) Check(parties int) {
	if q.Scale <= 0 || q.Clip <= 0 {
		panic("secagg: Quantizer needs positive Scale and Clip")
	}
	if float64(parties)*q.Clip*q.Scale >= float64(P/2) {
		panic(fmt.Sprintf("secagg: %d parties × Clip %g × Scale %g overflows field", parties, q.Clip, q.Scale))
	}
}

// Quantize encodes v into field elements.
func (q Quantizer) Quantize(v []float64) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		if x > q.Clip {
			x = q.Clip
		} else if x < -q.Clip {
			x = -q.Clip
		}
		scaled := int64(x * q.Scale)
		if scaled >= 0 {
			out[i] = Reduce(uint64(scaled))
		} else {
			out[i] = Neg(uint64(-scaled))
		}
	}
	return out
}

// Dequantize decodes a field-element vector that encodes a sum of at most
// maxParties quantized updates back to floats, interpreting values above
// P/2 as negative.
func (q Quantizer) Dequantize(v []uint64, maxParties int) []float64 {
	q.Check(maxParties)
	out := make([]float64, len(v))
	half := P / 2
	for i, x := range v {
		x = Reduce(x)
		if x > half {
			out[i] = -float64(P-x) / q.Scale
		} else {
			out[i] = float64(x) / q.Scale
		}
	}
	return out
}
