// Package secagg implements a compact Bonawitz-style secure aggregation
// substrate: clients submit fixed-point-quantized model updates blinded by
// pairwise-cancelling PRG masks plus a personal mask, with Shamir secret
// sharing providing dropout recovery. The server learns only the sum of the
// surviving clients' updates.
//
// This is the group operation whose cost the paper measures in Fig. 8 and
// models as quadratic in group size (each client exchanges masks/shares
// with every other client). The session records operation counts so the
// experiment harness can verify the quadratic shape empirically.
package secagg

import "math/bits"

// P is the field modulus, the Mersenne prime 2⁶¹−1. Mersenne reduction
// keeps multiplication branch-light and fast.
const P uint64 = (1 << 61) - 1

// Reduce maps x into [0, P).
func Reduce(x uint64) uint64 {
	x = (x >> 61) + (x & P)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns a+b mod P. Inputs must already be reduced.
func Add(a, b uint64) uint64 {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a−b mod P. Inputs must already be reduced.
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Mul returns a·b mod P using 128-bit intermediate arithmetic and two
// Mersenne folds.
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a,b < 2^61 so the product < 2^122: hi < 2^58.
	// x = hi·2^64 + lo = hi·8·2^61 + lo ≡ hi·8 + lo (mod 2^61−1), after
	// folding lo's top bits too.
	r := (lo & P) + (lo >> 61) + (hi << 3)
	return Reduce(r)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := Reduce(a)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod P (Fermat). a must be
// nonzero mod P.
func Inv(a uint64) uint64 {
	if Reduce(a) == 0 {
		panic("secagg: inverse of zero")
	}
	return Pow(a, P-2)
}

// Neg returns −a mod P.
func Neg(a uint64) uint64 {
	a = Reduce(a)
	if a == 0 {
		return 0
	}
	return P - a
}
