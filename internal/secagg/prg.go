package secagg

import (
	"crypto/sha256"
	"encoding/binary"
)

// MaskStream deterministically expands a 64-bit seed into field elements
// using SHA-256 in counter mode. Both endpoints of a pairwise mask derive
// the same stream from the agreed seed, so the masks cancel in the sum.
func MaskStream(seed uint64, dim int) []uint64 {
	out := make([]uint64, dim)
	var block [16]byte
	binary.LittleEndian.PutUint64(block[:8], seed)
	i := 0
	for ctr := uint64(0); i < dim; ctr++ {
		binary.LittleEndian.PutUint64(block[8:], ctr)
		h := sha256.Sum256(block[:])
		for off := 0; off+8 <= len(h) && i < dim; off += 8 {
			out[i] = Reduce(binary.LittleEndian.Uint64(h[off : off+8]))
			i++
		}
	}
	return out
}

// DeriveSeed hashes the session seed with the two party identities into a
// shared pairwise seed; the simulation stands in for the Diffie–Hellman key
// agreement round of the real protocol (both orderings agree).
func DeriveSeed(session uint64, a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], session)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(a))
	binary.LittleEndian.PutUint64(buf[16:], uint64(b))
	h := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(h[:8])
}
