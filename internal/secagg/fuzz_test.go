package secagg

import (
	"math"
	"testing"
)

// FuzzQuantizeRoundTrip checks the fixed-point codec on arbitrary values:
// encode→decode stays within one quantization step of the clipped input.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add(0.0, 1.5)
	f.Add(-7.99, 7.99)
	f.Add(1e300, -1e300)
	f.Add(math.Inf(1), math.Inf(-1))
	f.Fuzz(func(t *testing.T, a, b float64) {
		if math.IsNaN(a) || math.IsNaN(b) {
			return // NaN clipping is undefined by contract
		}
		q := DefaultQuantizer()
		in := []float64{a, b}
		dec := q.Dequantize(q.Quantize(in), 1)
		for i, v := range in {
			clipped := math.Max(-q.Clip, math.Min(q.Clip, v))
			if math.Abs(dec[i]-clipped) > 2/q.Scale {
				t.Fatalf("round trip %v -> %v (clipped %v)", v, dec[i], clipped)
			}
		}
	})
}

// FuzzFieldOps checks algebraic identities of the Mersenne-field arithmetic
// on arbitrary inputs.
func FuzzFieldOps(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(P-1, P-1)
	f.Add(^uint64(0), uint64(12345))
	f.Fuzz(func(t *testing.T, x, y uint64) {
		a, b := Reduce(x), Reduce(y)
		if Add(a, b) != Add(b, a) {
			t.Fatal("Add not commutative")
		}
		if Mul(a, b) != Mul(b, a) {
			t.Fatal("Mul not commutative")
		}
		if Sub(Add(a, b), b) != a {
			t.Fatal("Sub does not invert Add")
		}
		if a != 0 && Mul(a, Inv(a)) != 1 {
			t.Fatal("Inv broken")
		}
	})
}
