package secagg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestFieldArithmetic(t *testing.T) {
	if Add(P-1, 1) != 0 {
		t.Fatal("Add wrap failed")
	}
	if Sub(0, 1) != P-1 {
		t.Fatal("Sub wrap failed")
	}
	if Mul(2, 3) != 6 {
		t.Fatal("small Mul failed")
	}
	if Neg(0) != 0 || Add(Neg(5), 5) != 0 {
		t.Fatal("Neg failed")
	}
}

func TestFieldMulMatchesBigIntStyle(t *testing.T) {
	// a*b mod P checked against iterated addition for structured values and
	// against algebraic identities for random ones.
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		c := Reduce(rng.Uint64())
		// Distributivity: a(b+c) = ab+ac.
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		if left != right {
			return false
		}
		// Commutativity.
		return Mul(a, b) == Mul(b, a)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFieldInverse(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		a := Reduce(rng.Uint64())
		if a == 0 {
			a = 1
		}
		return Mul(a, Inv(a)) == 1
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	if Pow(2, 10) != 1024 {
		t.Fatal("Pow(2,10) wrong")
	}
	// Fermat: a^(P-1) = 1.
	if Pow(12345, P-1) != 1 {
		t.Fatal("Fermat identity failed")
	}
}

func TestMaskStreamDeterministicAndSeedSensitive(t *testing.T) {
	a := MaskStream(42, 100)
	b := MaskStream(42, 100)
	c := MaskStream(43, 100)
	same := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MaskStream not deterministic")
		}
		if a[i] >= P {
			t.Fatal("MaskStream element out of field")
		}
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree on %d/100 elements", same)
	}
}

func TestDeriveSeedSymmetric(t *testing.T) {
	if DeriveSeed(7, 2, 5) != DeriveSeed(7, 5, 2) {
		t.Fatal("pairwise seed must be order independent")
	}
	if DeriveSeed(7, 2, 5) == DeriveSeed(7, 2, 6) {
		t.Fatal("distinct pairs must get distinct seeds")
	}
	if DeriveSeed(7, 2, 5) == DeriveSeed(8, 2, 5) {
		t.Fatal("distinct sessions must get distinct seeds")
	}
}

func TestShamirRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	err := quick.Check(func(seed uint64) bool {
		secret := Reduce(seed)
		shares := Split(secret, 7, 4, rng)
		// Any 4 shares reconstruct.
		if Reconstruct(shares[:4]) != secret {
			return false
		}
		if Reconstruct(shares[3:]) != secret {
			return false
		}
		// A different subset also works.
		subset := []Share{shares[0], shares[2], shares[4], shares[6]}
		return Reconstruct(subset) == secret
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShamirThresholdHides(t *testing.T) {
	// With t-1 shares, reconstruction gives the wrong value almost surely
	// (information-theoretically it gives no information; we just verify it
	// does not accidentally reconstruct).
	rng := stats.NewRNG(2)
	secret := uint64(123456789)
	shares := Split(secret, 5, 3, rng)
	if Reconstruct(shares[:2]) == secret {
		t.Fatal("2 of 3 shares should not reconstruct (w.h.p.)")
	}
}

func TestShamirPanics(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, fn := range []func(){
		func() { Split(1, 3, 0, rng) },
		func() { Split(1, 3, 4, rng) },
		func() { Reconstruct(nil) },
		func() { Reconstruct([]Share{{X: 1, Y: 1}, {X: 1, Y: 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	q := DefaultQuantizer()
	v := []float64{0, 1.5, -2.25, 7.99, -7.99, 0.000001}
	enc := q.Quantize(v)
	dec := q.Dequantize(enc, 1)
	for i := range v {
		if math.Abs(dec[i]-v[i]) > 2/q.Scale {
			t.Fatalf("round trip %v -> %v", v[i], dec[i])
		}
	}
}

func TestQuantizeClips(t *testing.T) {
	q := Quantizer{Scale: 1 << 16, Clip: 1}
	dec := q.Dequantize(q.Quantize([]float64{5, -5}), 1)
	//lint:ignore float-eq test asserts exact deterministic output
	if dec[0] != 1 || dec[1] != -1 {
		t.Fatalf("clip failed: %v", dec)
	}
}

func TestQuantizerCheckOverflow(t *testing.T) {
	q := Quantizer{Scale: 1 << 40, Clip: 1 << 20}
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	q.Check(10)
}

func TestSecureAggregationNoDropout(t *testing.T) {
	const n, dim = 6, 40
	q := DefaultQuantizer()
	s := NewSession(n, dim, 4, 99, q)
	rng := stats.NewRNG(5)
	updates := make([][]float64, n)
	want := make([]float64, dim)
	masked := make([][]uint64, n)
	for i := 0; i < n; i++ {
		updates[i] = make([]float64, dim)
		for d := range updates[i] {
			updates[i][d] = rng.Normal(0, 1)
			want[d] += math.Max(-q.Clip, math.Min(q.Clip, updates[i][d]))
		}
		masked[i] = s.MaskedUpdate(i, updates[i])
	}
	got, err := s.Aggregate(masked, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if math.Abs(got[d]-want[d]) > float64(n)*2/q.Scale {
			t.Fatalf("aggregate[%d] = %v, want %v", d, got[d], want[d])
		}
	}
}

func TestMaskedUpdateIsBlinded(t *testing.T) {
	// A single masked update must look nothing like its plaintext: compare
	// against the quantized plaintext directly.
	const n, dim = 4, 32
	q := DefaultQuantizer()
	s := NewSession(n, dim, 3, 7, q)
	update := make([]float64, dim) // all zeros
	masked := s.MaskedUpdate(0, update)
	zeroEnc := q.Quantize(update)
	same := 0
	for d := range masked {
		if masked[d] == zeroEnc[d] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("masked update equals plaintext on %d/%d coords", same, dim)
	}
}

func TestSecureAggregationWithDropout(t *testing.T) {
	const n, dim = 7, 25
	q := DefaultQuantizer()
	s := NewSession(n, dim, 4, 1234, q)
	rng := stats.NewRNG(8)
	masked := make([][]uint64, n)
	want := make([]float64, dim)
	dropped := []int{2, 5}
	isDropped := map[int]bool{2: true, 5: true}
	for i := 0; i < n; i++ {
		update := make([]float64, dim)
		for d := range update {
			update[d] = rng.Normal(0, 0.5)
		}
		if isDropped[i] {
			// Client computed its update but never submitted.
			continue
		}
		masked[i] = s.MaskedUpdate(i, update)
		for d := range update {
			want[d] += update[d]
		}
	}
	got, err := s.Aggregate(masked, dropped)
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if math.Abs(got[d]-want[d]) > float64(n)*2/q.Scale {
			t.Fatalf("dropout aggregate[%d] = %v, want %v", d, got[d], want[d])
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	q := DefaultQuantizer()
	s := NewSession(4, 8, 3, 1, q)
	masked := make([][]uint64, 4)
	for i := 0; i < 4; i++ {
		masked[i] = s.MaskedUpdate(i, make([]float64, 8))
	}
	// Too many dropouts: survivors below threshold.
	m2 := [][]uint64{masked[0], masked[1], nil, nil}
	if _, err := s.Aggregate(m2, []int{2, 3}); err == nil {
		t.Fatal("expected threshold error")
	}
	// Dropped client submitted.
	if _, err := s.Aggregate(masked, []int{1}); err == nil {
		t.Fatal("expected dropped-but-submitted error")
	}
	// Missing survivor update.
	m3 := [][]uint64{masked[0], nil, masked[2], masked[3]}
	if _, err := s.Aggregate(m3, nil); err == nil {
		t.Fatal("expected missing-update error")
	}
	// Wrong count.
	if _, err := s.Aggregate(masked[:3], nil); err == nil {
		t.Fatal("expected count error")
	}
	// Bad dropped index.
	if _, err := s.Aggregate(masked, []int{9}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestOpCountsQuadratic(t *testing.T) {
	// The number of PRG mask expansions across all clients grows
	// quadratically with group size — the empirical grounding for the
	// paper's O_g(|g|) model.
	streams := func(n int) int {
		q := DefaultQuantizer()
		s := NewSession(n, 8, n/2+1, 1, q)
		masked := make([][]uint64, n)
		for i := 0; i < n; i++ {
			masked[i] = s.MaskedUpdate(i, make([]float64, 8))
		}
		if _, err := s.Aggregate(masked, nil); err != nil {
			t.Fatal(err)
		}
		return s.Ops().MaskStreams
	}
	s10, s20, s40 := streams(10), streams(20), streams(40)
	// Mask streams = n(n-1) pairwise + 2n self → ratio ≈ 4 when doubling.
	r1 := float64(s20) / float64(s10)
	r2 := float64(s40) / float64(s20)
	if r1 < 3 || r2 < 3 {
		t.Fatalf("mask stream growth not quadratic: %d %d %d", s10, s20, s40)
	}
}

func TestSessionPanics(t *testing.T) {
	q := DefaultQuantizer()
	for _, fn := range []func(){
		func() { NewSession(1, 8, 1, 1, q) },
		func() { NewSession(4, 8, 0, 1, q) },
		func() { NewSession(4, 8, 5, 1, q) },
		func() { NewSession(4, 8, 2, 1, q).MaskedUpdate(7, make([]float64, 8)) },
		func() { NewSession(4, 8, 2, 1, q).MaskedUpdate(0, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// BenchmarkSecureAggregation measures a full session (mask + aggregate) at
// realistic group sizes, grounding the quadratic cost model.
func BenchmarkSecureAggregation5(b *testing.B)  { benchSecAgg(b, 5) }
func BenchmarkSecureAggregation10(b *testing.B) { benchSecAgg(b, 10) }
func BenchmarkSecureAggregation20(b *testing.B) { benchSecAgg(b, 20) }

func benchSecAgg(b *testing.B, n int) {
	const dim = 256
	q := DefaultQuantizer()
	update := make([]float64, dim)
	for i := range update {
		update[i] = float64(i%7) * 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSession(n, dim, n/2+1, uint64(i), q)
		masked := make([][]uint64, n)
		for c := 0; c < n; c++ {
			masked[c] = s.MaskedUpdate(c, update)
		}
		if _, err := s.Aggregate(masked, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskStream(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaskStream(uint64(i), 1024)
	}
}

func BenchmarkShamirSplitReconstruct(b *testing.B) {
	rng := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		shares := Split(uint64(i), 10, 6, rng)
		Reconstruct(shares[:6])
	}
}
