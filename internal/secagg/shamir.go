package secagg

import (
	"fmt"

	"repro/internal/stats"
)

// Share is one Shamir share: the polynomial evaluated at X.
type Share struct {
	X uint64
	Y uint64
}

// Split shares secret among n parties with reconstruction threshold t
// (any t shares reconstruct; fewer reveal nothing). Shares are evaluated at
// x = 1..n.
func Split(secret uint64, n, t int, rng *stats.RNG) []Share {
	if t < 1 || t > n {
		panic(fmt.Sprintf("secagg: invalid threshold %d for %d parties", t, n))
	}
	// Random polynomial of degree t-1 with constant term = secret.
	coeffs := make([]uint64, t)
	coeffs[0] = Reduce(secret)
	for i := 1; i < t; i++ {
		coeffs[i] = Reduce(rng.Uint64())
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := uint64(i + 1)
		// Horner evaluation.
		y := uint64(0)
		for j := t - 1; j >= 0; j-- {
			y = Add(Mul(y, x), coeffs[j])
		}
		shares[i] = Share{X: x, Y: y}
	}
	return shares
}

// Reconstruct recovers the secret from at least t distinct shares by
// Lagrange interpolation at zero.
func Reconstruct(shares []Share) uint64 {
	if len(shares) == 0 {
		panic("secagg: no shares")
	}
	secret := uint64(0)
	for i, si := range shares {
		num, den := uint64(1), uint64(1)
		for j, sj := range shares {
			if i == j {
				continue
			}
			if si.X == sj.X {
				panic("secagg: duplicate share X")
			}
			num = Mul(num, Neg(sj.X))       // ∏ (0 - x_j)
			den = Mul(den, Sub(si.X, sj.X)) // ∏ (x_i - x_j)
		}
		secret = Add(secret, Mul(si.Y, Mul(num, Inv(den))))
	}
	return secret
}
