package secagg

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// OpCounts records the work performed during one aggregation, used by the
// experiment harness to confirm the quadratic-in-group-size cost shape of
// Fig. 8.
type OpCounts struct {
	// MaskStreams is the number of PRG mask expansions (pairwise + self).
	MaskStreams int
	// SharesDealt is the number of Shamir shares created.
	SharesDealt int
	// SharesUsed is the number of shares consumed during reconstruction.
	SharesUsed int
	// FieldOps approximates the element-wise field additions performed.
	FieldOps int
}

// Session runs one secure aggregation among n clients over dim-dimensional
// updates. The flow mirrors Bonawitz et al. (CCS'17), collapsed to the
// simulation's trust model:
//
//  1. setup: every client i derives a pairwise seed with every j (stand-in
//     for the DH round) and a personal mask seed b_i, then Shamir-shares
//     its secret key s_i and b_i with the group (threshold T).
//  2. MaskedUpdate(i, v): client i submits v blinded by its personal mask
//     and all pairwise masks.
//  3. Aggregate(masked, dropped): the server removes the personal masks of
//     survivors (reconstructing b_i from shares) and the pairwise masks of
//     dropped clients (reconstructing s_i), yielding exactly the sum of
//     surviving clients' quantized updates.
type Session struct {
	N, Dim    int
	Threshold int
	Quant     Quantizer

	sessionSeed uint64
	selfSeeds   []uint64  // b_i
	selfShares  [][]Share // selfShares[i] held by the group
	keyShares   [][]Share // shares of s_i (here: of the session-pair seeds' base)

	ops       OpCounts
	published OpCounts // high-water mark of counts already flushed by PublishOps
}

// NewSession prepares a secure aggregation session. threshold is the Shamir
// reconstruction threshold T; the aggregation can tolerate up to
// n−threshold dropped clients.
//
//lint:deterministic
func NewSession(n, dim, threshold int, seed uint64, q Quantizer) *Session {
	if n < 2 {
		panic("secagg: need at least 2 clients")
	}
	if threshold < 1 || threshold > n {
		panic(fmt.Sprintf("secagg: invalid threshold %d for %d clients", threshold, n))
	}
	q.Check(n)
	rng := stats.NewRNG(seed ^ 0x5ec4a66)
	s := &Session{
		N: n, Dim: dim, Threshold: threshold, Quant: q,
		sessionSeed: seed,
		selfSeeds:   make([]uint64, n),
		selfShares:  make([][]Share, n),
		keyShares:   make([][]Share, n),
	}
	for i := 0; i < n; i++ {
		s.selfSeeds[i] = rng.Uint64()
		s.selfShares[i] = Split(Reduce(s.selfSeeds[i]), n, threshold, rng)
		// In the real protocol each client shares its DH secret; the
		// simulation derives pairwise seeds from the session seed, so the
		// shared "key" is a per-client token the server can use to re-derive
		// that client's pairwise seeds on dropout.
		s.keyShares[i] = Split(Reduce(uint64(i)+1), n, threshold, rng)
		s.ops.SharesDealt += 2 * n
	}
	return s
}

// MaskedUpdate produces client i's blinded, quantized update.
//
//lint:deterministic
func (s *Session) MaskedUpdate(i int, update []float64) []uint64 {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("secagg: client %d out of range", i))
	}
	if len(update) != s.Dim {
		panic(fmt.Sprintf("secagg: update dim %d, want %d", len(update), s.Dim))
	}
	y := s.Quant.Quantize(update)
	// Personal mask.
	self := MaskStream(s.selfSeeds[i], s.Dim)
	s.ops.MaskStreams++
	for d := 0; d < s.Dim; d++ {
		y[d] = Add(y[d], self[d])
	}
	s.ops.FieldOps += s.Dim
	// Pairwise masks: +mask for j>i, −mask for j<i, so they cancel in the
	// full sum.
	for j := 0; j < s.N; j++ {
		if j == i {
			continue
		}
		m := MaskStream(DeriveSeed(s.sessionSeed, i, j), s.Dim)
		s.ops.MaskStreams++
		if j > i {
			for d := 0; d < s.Dim; d++ {
				y[d] = Add(y[d], m[d])
			}
		} else {
			for d := 0; d < s.Dim; d++ {
				y[d] = Sub(y[d], m[d])
			}
		}
		s.ops.FieldOps += s.Dim
	}
	return y
}

// Aggregate sums the survivors' masked updates and removes the residual
// masks: survivors' personal masks (via their Shamir shares) and dropped
// clients' pairwise masks (via their reconstructed keys). masked[i] must be
// nil exactly for dropped clients. It returns the dequantized sum of the
// surviving clients' updates.
//
//lint:deterministic
func (s *Session) Aggregate(masked [][]uint64, dropped []int) ([]float64, error) {
	if len(masked) != s.N {
		return nil, fmt.Errorf("secagg: %d masked updates for %d clients", len(masked), s.N)
	}
	isDropped := make([]bool, s.N)
	for _, d := range dropped {
		if d < 0 || d >= s.N {
			return nil, fmt.Errorf("secagg: dropped index %d out of range", d)
		}
		isDropped[d] = true
	}
	survivors := 0
	for i := 0; i < s.N; i++ {
		if isDropped[i] {
			if masked[i] != nil {
				return nil, fmt.Errorf("secagg: dropped client %d submitted an update", i)
			}
			continue
		}
		if masked[i] == nil {
			return nil, fmt.Errorf("secagg: surviving client %d missing update", i)
		}
		survivors++
	}
	if survivors < s.Threshold {
		return nil, fmt.Errorf("secagg: %d survivors below threshold %d", survivors, s.Threshold)
	}

	sum := make([]uint64, s.Dim)
	for i := 0; i < s.N; i++ {
		if isDropped[i] {
			continue
		}
		for d := 0; d < s.Dim; d++ {
			sum[d] = Add(sum[d], masked[i][d])
		}
		s.ops.FieldOps += s.Dim
	}

	// Remove survivors' personal masks: reconstruct b_i from the first
	// Threshold shares held by surviving clients.
	for i := 0; i < s.N; i++ {
		if isDropped[i] {
			continue
		}
		shares := s.collectShares(s.selfShares[i], isDropped)
		b := Reconstruct(shares)
		if b != Reduce(s.selfSeeds[i]) {
			return nil, fmt.Errorf("secagg: personal mask reconstruction failed for client %d", i)
		}
		m := MaskStream(s.selfSeeds[i], s.Dim)
		s.ops.MaskStreams++
		for d := 0; d < s.Dim; d++ {
			sum[d] = Sub(sum[d], m[d])
		}
		s.ops.FieldOps += s.Dim
	}

	// Remove dropped clients' pairwise masks with every survivor. The
	// reconstruction of the dropped client's key token authorizes the
	// server to re-derive its pairwise seeds.
	for _, dc := range dropped {
		shares := s.collectShares(s.keyShares[dc], isDropped)
		if got := Reconstruct(shares); got != Reduce(uint64(dc)+1) {
			return nil, fmt.Errorf("secagg: key reconstruction failed for dropped client %d", dc)
		}
		for j := 0; j < s.N; j++ {
			if j == dc || isDropped[j] {
				continue
			}
			m := MaskStream(DeriveSeed(s.sessionSeed, dc, j), s.Dim)
			s.ops.MaskStreams++
			// Survivor j applied sign(dc-j): if dc > j survivor added
			// +mask... mask sign convention: client j adds +m for partner
			// dc>j, −m for dc<j. Undo exactly that contribution.
			if dc > j {
				for d := 0; d < s.Dim; d++ {
					sum[d] = Sub(sum[d], m[d])
				}
			} else {
				for d := 0; d < s.Dim; d++ {
					sum[d] = Add(sum[d], m[d])
				}
			}
			s.ops.FieldOps += s.Dim
		}
	}

	return s.Quant.Dequantize(sum, survivors), nil
}

// HeldShares returns the shares client holder holds for each subject: its
// share of the subject's personal-mask secret b_d and of the subject's key
// token, two shares per subject in subject order. This is what a surviving
// client reveals to the aggregation server during dropout recovery; the
// networked protocol (internal/fednode) moves exactly these values in its
// ShareReveal exchange before Aggregate reconstructs from them.
func (s *Session) HeldShares(holder int, subjects []int) ([]Share, error) {
	if holder < 0 || holder >= s.N {
		return nil, fmt.Errorf("secagg: share holder %d out of range", holder)
	}
	out := make([]Share, 0, 2*len(subjects))
	for _, d := range subjects {
		if d < 0 || d >= s.N {
			return nil, fmt.Errorf("secagg: share subject %d out of range", d)
		}
		out = append(out, s.selfShares[d][holder], s.keyShares[d][holder])
	}
	return out, nil
}

// collectShares gathers Threshold shares from surviving holders. Share k of
// a secret is held by client k.
func (s *Session) collectShares(all []Share, isDropped []bool) []Share {
	out := make([]Share, 0, s.Threshold)
	for k := 0; k < s.N && len(out) < s.Threshold; k++ {
		if !isDropped[k] {
			out = append(out, all[k])
			s.ops.SharesUsed++
		}
	}
	return out
}

// Ops returns the accumulated operation counts.
func (s *Session) Ops() OpCounts { return s.ops }

// PublishOps flushes the operation counts accumulated since the previous
// PublishOps call into reg's fel_secagg_* counters, labeled with the group
// size so snapshots expose the quadratic O_g(|g|) cost shape (Eq. 5 /
// Fig. 8) directly: on a clean round the per-session mask-stream count is
// n(n−1) pairwise + n personal at masking time plus n personal removals at
// aggregation time — n²+n total. The delta bookkeeping makes the method
// safe to call at several protocol points (client-side after MaskedUpdate,
// edge-side after Aggregate) without double counting. reg may be nil.
func (s *Session) PublishOps(reg *metrics.Registry) {
	d := s.ops
	d.MaskStreams -= s.published.MaskStreams
	d.SharesDealt -= s.published.SharesDealt
	d.SharesUsed -= s.published.SharesUsed
	d.FieldOps -= s.published.FieldOps
	s.published = s.ops
	gs := metrics.L("gs", strconv.Itoa(s.N))
	reg.Counter("fel_secagg_mask_streams_total", gs).Add(int64(d.MaskStreams))
	reg.Counter("fel_secagg_shares_dealt_total", gs).Add(int64(d.SharesDealt))
	reg.Counter("fel_secagg_shares_used_total", gs).Add(int64(d.SharesUsed))
	reg.Counter("fel_secagg_field_ops_total", gs).Add(int64(d.FieldOps))
}
