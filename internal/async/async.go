// Package async defines the buffered-asynchronous and semi-synchronous
// aggregation semantics that extend the paper's bulk-synchronous Alg. 1
// (ROADMAP item 5, FedBuff-style): client updates are folded into a group
// buffer as they "arrive", each weighted by a staleness discount
// w(τ) = 1/(1+τ)^α, with arrival order driven by a seeded logical clock
// over simulated link delays and recorded to an arrival Log so any run
// replays bit-identically from (seed, config).
//
// The package owns the mode vocabulary, the staleness function, the delay
// model (the logical clock's tick source), and the arrival-log event record
// plus its deterministic byte and wire encodings. The executor that threads
// these semantics through the training engine lives in internal/core
// (async_engine.go); keeping the two apart lets the wire and serving layers
// speak arrival logs without importing the trainer.
//
// Determinism contract: every delay draw comes from a dedicated RNG
// reseeded with DispatchSeed(seed, round, group, client, k) — a pure
// function of the dispatch coordinates, never of scheduling — and arrival
// ties break on dispatch order. Two runs of the same (System, Config)
// therefore produce byte-identical logs and Float64bits-identical weights
// at any MaxParallel, and a run resumed from a checkpoint appends to its
// log exactly what the uninterrupted run would have written.
package async

import (
	"fmt"
	"math"
)

// Mode selects the aggregation semantics of a training run.
type Mode int

// The three aggregation modes compared by the async-vs-sync bench.
const (
	// Sync is the paper's bulk-synchronous Alg. 1: every group round waits
	// for all member updates before aggregating.
	Sync Mode = iota
	// Buffered is FedBuff-style buffered asynchrony: the group model is
	// re-aggregated whenever BufferFrac of the membership has checked in,
	// with stale updates discounted by w(τ).
	Buffered
	// SemiSync runs fixed per-round deadlines: updates arriving before the
	// deadline fold at the deadline, late updates carry over into later
	// rounds with growing staleness, and updates still in flight after the
	// final deadline are discarded.
	SemiSync
)

// String names the mode as experiment output spells it.
func (m Mode) String() string {
	switch m {
	case Sync:
		return "sync"
	case Buffered:
		return "async"
	case SemiSync:
		return "semisync"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config bundles the asynchrony knobs of one training run. The zero value
// is the synchronous paper configuration.
type Config struct {
	// Mode selects the aggregation semantics.
	Mode Mode
	// Alpha is the staleness exponent: folded updates are weighted by
	// n_i · 1/(1+τ)^α where τ counts the model versions published since
	// the update was dispatched. 0 disables the discount.
	Alpha float64
	// BufferFrac sets the Buffered flush threshold as a fraction of the
	// group size: the buffer folds once ceil(BufferFrac·n) updates have
	// arrived since the last flush (dropped updates count as arrivals —
	// the loss is observed). 0 means 1.0, the full buffer that reduces
	// exactly to the synchronous group round.
	BufferFrac float64
	// DeadlineTicks is the SemiSync per-round deadline on the logical
	// clock. Must be positive in SemiSync mode.
	DeadlineTicks int64
	// Delays is the logical clock's tick source: every dispatched update's
	// arrival time is now + Delays.Draw(...). A zero model makes all
	// delays zero (arrival order = dispatch order).
	Delays DelayModel
}

// Validate rejects configurations the executor would misbehave on.
func (c Config) Validate() error {
	switch {
	case c.Mode < Sync || c.Mode > SemiSync:
		return fmt.Errorf("async: unknown mode %d", int(c.Mode))
	case c.Alpha < 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0):
		return fmt.Errorf("async: Alpha must be finite and >= 0, got %v", c.Alpha)
	case c.BufferFrac < 0 || c.BufferFrac > 1:
		return fmt.Errorf("async: BufferFrac must be in [0,1], got %v", c.BufferFrac)
	case c.Mode == SemiSync && c.DeadlineTicks <= 0:
		return fmt.Errorf("async: SemiSync needs DeadlineTicks > 0, got %d", c.DeadlineTicks)
	}
	return c.Delays.Validate()
}

// FlushThreshold returns the Buffered arrival count that triggers a flush
// for a group of n clients: ceil(BufferFrac·n), clamped to [1, n].
func (c Config) FlushThreshold(n int) int {
	frac := c.BufferFrac
	if frac <= 0 {
		frac = 1
	}
	b := int(math.Ceil(frac * float64(n)))
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b
}

// StalenessWeight is the FedBuff discount w(τ) = 1/(1+τ)^α. τ ≤ 0 (a fresh
// update) and α = 0 both yield exactly 1.0, which is what makes the
// full-buffer configuration bit-identical to the synchronous fold.
func StalenessWeight(tau int, alpha float64) float64 {
	//lint:ignore float-eq α=0 must disable the discount exactly — the sync-equivalence gate depends on w being the literal 1.0
	if tau <= 0 || alpha == 0 {
		return 1
	}
	return math.Pow(1+float64(tau), -alpha)
}
