package async

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/wire"
)

// Kind classifies one arrival-log event.
type Kind int

// The five event kinds an executor records.
const (
	// Arrive: an update reached the group buffer (and was folded at the
	// next flush). Stale is the version lag at fold time.
	Arrive Kind = iota
	// Drop: the update was lost to client dropout; the arrival slot is
	// observed but nothing folds.
	Drop
	// Flush: the buffer folded into the group model. Stale carries the
	// number of updates folded (the buffer depth).
	Flush
	// Carry: a semi-sync update missed a round deadline and carries over;
	// one event per missed deadline. Stale is the deadline round missed.
	Carry
	// Late: a semi-sync update was still in flight after the final
	// deadline and was discarded.
	Late
)

// String names the kind as logs and test output spell it.
func (k Kind) String() string {
	switch k {
	case Arrive:
		return "arrive"
	case Drop:
		return "drop"
	case Flush:
		return "flush"
	case Carry:
		return "carry"
	case Late:
		return "late"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

const kindMax = Late

// Event is one arrival-log record. Events are pure value records: two runs
// agree iff their event sequences are identical, which Bytes makes
// checkable with one compare.
type Event struct {
	// Round is the global round the event belongs to.
	Round int
	// Group is the group ID; Client is the client ID (-1 for group-scoped
	// events such as Flush).
	Group, Client int
	// Kind classifies the event.
	Kind Kind
	// Tick is the logical-clock time of the event within its group.
	Tick int64
	// Stale is kind-dependent: version lag (Arrive), buffer depth (Flush),
	// missed deadline round (Carry), 0 otherwise.
	Stale int
}

// String renders the event in the one-line form tests diff.
func (e Event) String() string {
	return fmt.Sprintf("r%d g%d c%d %s t%d s%d",
		e.Round, e.Group, e.Client, e.Kind, e.Tick, e.Stale)
}

// Log is an append-only arrival log. It is not internally synchronized:
// executors record per-group into private slices and the trainer merges
// them in selection order, so the log itself is only ever touched from one
// goroutine.
type Log struct {
	events []Event
}

// Append adds events in order.
func (l *Log) Append(events ...Event) {
	l.events = append(l.events, events...)
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the recorded sequence. The slice is shared; callers must
// not mutate it.
func (l *Log) Events() []Event { return l.events }

// Counts tallies events by kind.
func (l *Log) Counts() map[Kind]int {
	m := make(map[Kind]int, int(kindMax)+1)
	for _, e := range l.events {
		m[e.Kind]++
	}
	return m
}

// Clone deep-copies the log (checkpoint export snapshots it).
func (l *Log) Clone() *Log {
	c := &Log{events: make([]Event, len(l.events))}
	copy(c.events, l.events)
	return c
}

// Bytes renders the log to a canonical little-endian byte string: 6 fixed
// words per event, no framing. Two runs replay identically iff their
// Bytes are equal.
func (l *Log) Bytes() []byte {
	buf := make([]byte, 0, 48*len(l.events))
	var w [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		buf = append(buf, w[:]...)
	}
	for _, e := range l.events {
		put(int64(e.Round))
		put(int64(e.Group))
		put(int64(e.Client))
		put(int64(e.Kind))
		put(e.Tick)
		put(int64(e.Stale))
	}
	return buf
}

// String renders one event per line, for test failure diffs.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// logChunk caps events per ArrivalLog wire frame so one frame never
// exceeds the codec's comfort zone (5 ints + 1 word per event).
const logChunk = 4096

// EventsToMessages encodes events as a sequence of wire.ArrivalLog
// messages of at most logChunk events each, with Seq numbering the chunks
// from 0 and Round stamped on every frame. An empty event list encodes to
// a single empty frame so decoders can distinguish "empty log" from
// "log absent".
func EventsToMessages(events []Event, round uint32) []*wire.Message {
	var msgs []*wire.Message
	for first := true; first || len(events) > 0; first = false {
		n := len(events)
		if n > logChunk {
			n = logChunk
		}
		chunk := events[:n]
		events = events[n:]
		m := &wire.Message{
			Type:  wire.ArrivalLog,
			Round: round,
			Seq:   uint32(len(msgs)),
			Ints:  make([]int32, 0, 5*n),
			Words: make([]uint64, 0, n),
		}
		for _, e := range chunk {
			m.Ints = append(m.Ints,
				int32(e.Round), int32(e.Group), int32(e.Client),
				int32(e.Kind), int32(e.Stale))
			m.Words = append(m.Words, uint64(e.Tick))
		}
		msgs = append(msgs, m)
	}
	return msgs
}

// EventsFromMessage decodes one ArrivalLog frame, strictly: the Ints and
// Words lengths must agree (5:1), kinds must be in vocabulary, and Floats
// must be empty. Chunks decode independently; callers append in Seq order.
func EventsFromMessage(m *wire.Message) ([]Event, error) {
	if m.Type != wire.ArrivalLog {
		return nil, fmt.Errorf("async: not an arrival-log frame: %v", m.Type)
	}
	if len(m.Floats) != 0 {
		return nil, fmt.Errorf("async: arrival-log frame carries %d floats", len(m.Floats))
	}
	if len(m.Ints) != 5*len(m.Words) {
		return nil, fmt.Errorf("async: arrival-log frame shape %d ints / %d words", len(m.Ints), len(m.Words))
	}
	events := make([]Event, 0, len(m.Words))
	for i, tick := range m.Words {
		k := Kind(m.Ints[5*i+3])
		if k < Arrive || k > kindMax {
			return nil, fmt.Errorf("async: arrival-log event %d has unknown kind %d", i, int(k))
		}
		if int64(tick) < 0 {
			return nil, fmt.Errorf("async: arrival-log event %d has negative tick", i)
		}
		events = append(events, Event{
			Round:  int(m.Ints[5*i+0]),
			Group:  int(m.Ints[5*i+1]),
			Client: int(m.Ints[5*i+2]),
			Kind:   k,
			Tick:   int64(tick),
			Stale:  int(m.Ints[5*i+4]),
		})
	}
	return events, nil
}
