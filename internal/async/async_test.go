package async_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/async"
	"repro/internal/stats"
	"repro/internal/wire"
)

func TestStalenessWeight(t *testing.T) {
	cases := []struct {
		tau   int
		alpha float64
		want  float64
	}{
		{0, 0, 1}, {0, 2, 1}, {5, 0, 1}, {-3, 1.5, 1},
		{1, 1, 0.5}, {3, 1, 0.25}, {1, 2, 0.25},
	}
	for _, c := range cases {
		//lint:ignore float-eq exact values by construction
		if got := async.StalenessWeight(c.tau, c.alpha); got != c.want {
			t.Errorf("StalenessWeight(%d, %v) = %v, want %v", c.tau, c.alpha, got, c.want)
		}
	}
	// Monotone decreasing in τ for α > 0.
	prev := 1.0
	for tau := 1; tau < 10; tau++ {
		w := async.StalenessWeight(tau, 0.5)
		if w >= prev || w <= 0 {
			t.Fatalf("w(%d)=%v not strictly decreasing below %v", tau, w, prev)
		}
		prev = w
	}
}

func TestFlushThreshold(t *testing.T) {
	cases := []struct {
		frac string
		cfg  async.Config
		n    int
		want int
	}{
		{"zero-means-full", async.Config{}, 8, 8},
		{"full", async.Config{BufferFrac: 1}, 8, 8},
		{"half", async.Config{BufferFrac: 0.5}, 8, 4},
		{"ceil", async.Config{BufferFrac: 0.5}, 7, 4},
		{"floor-one", async.Config{BufferFrac: 0.01}, 8, 1},
		{"singleton", async.Config{BufferFrac: 0.25}, 1, 1},
	}
	for _, c := range cases {
		if got := c.cfg.FlushThreshold(c.n); got != c.want {
			t.Errorf("%s: FlushThreshold(%d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

func TestDelayModelDrawDeterministicAndBounded(t *testing.T) {
	d := async.StragglerStorm()
	seed := async.DispatchSeed(42, 3, 1, 9, 0)
	a := d.Draw(stats.NewRNG(seed))
	b := d.Draw(stats.NewRNG(seed))
	if a != b {
		t.Fatalf("same seed drew %d then %d", a, b)
	}
	rng := stats.NewRNG(1)
	sawStraggler := false
	for i := 0; i < 2000; i++ {
		rng.Reseed(async.DispatchSeed(42, 0, 0, i, 0))
		got := d.Draw(rng)
		fastMax := d.BaseTicks + d.JitterTicks
		slowMax := fastMax * d.StragglerFactor
		if got < d.BaseTicks || got > slowMax {
			t.Fatalf("draw %d outside [%d,%d]", got, d.BaseTicks, slowMax)
		}
		if got > fastMax {
			sawStraggler = true
		}
	}
	if !sawStraggler {
		t.Fatal("2000 straggler-storm draws produced no straggler")
	}
	var zero async.DelayModel
	if zero.Draw(stats.NewRNG(1)) != 0 {
		t.Fatal("zero model drew a nonzero delay")
	}
}

func TestDispatchSeedSensitivity(t *testing.T) {
	base := async.DispatchSeed(42, 1, 2, 3, 4)
	perturbed := []uint64{
		async.DispatchSeed(43, 1, 2, 3, 4),
		async.DispatchSeed(42, 2, 2, 3, 4),
		async.DispatchSeed(42, 1, 3, 3, 4),
		async.DispatchSeed(42, 1, 2, 4, 4),
		async.DispatchSeed(42, 1, 2, 3, 5),
	}
	for i, p := range perturbed {
		if p == base {
			t.Errorf("coordinate %d change did not change the seed", i)
		}
	}
}

func testEvents() []async.Event {
	return []async.Event{
		{Round: 0, Group: 1, Client: 3, Kind: async.Arrive, Tick: 12, Stale: 0},
		{Round: 0, Group: 1, Client: 5, Kind: async.Drop, Tick: 14},
		{Round: 0, Group: 1, Client: -1, Kind: async.Flush, Tick: 14, Stale: 1},
		{Round: 1, Group: 2, Client: 7, Kind: async.Carry, Tick: 30, Stale: 1},
		{Round: 1, Group: 2, Client: 7, Kind: async.Late, Tick: 44},
	}
}

func TestLogBytesAndCounts(t *testing.T) {
	var a, b async.Log
	a.Append(testEvents()...)
	b.Append(testEvents()...)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical logs render different bytes")
	}
	b.Append(async.Event{Kind: async.Flush})
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("diverged logs render equal bytes")
	}
	counts := a.Counts()
	for _, k := range []async.Kind{async.Arrive, async.Drop, async.Flush, async.Carry, async.Late} {
		if counts[k] != 1 {
			t.Fatalf("count[%v] = %d, want 1", k, counts[k])
		}
	}
	c := a.Clone()
	c.Append(async.Event{})
	if a.Len() != 5 || c.Len() != 6 {
		t.Fatalf("clone not independent: %d / %d", a.Len(), c.Len())
	}
	if !strings.Contains(a.String(), "r0 g1 c3 arrive t12 s0") {
		t.Fatalf("String rendering unexpected:\n%s", a.String())
	}
}

func TestEventsWireRoundTrip(t *testing.T) {
	events := testEvents()
	msgs := async.EventsToMessages(events, 9)
	if len(msgs) != 1 {
		t.Fatalf("got %d frames, want 1", len(msgs))
	}
	if msgs[0].Type != wire.ArrivalLog || msgs[0].Round != 9 || msgs[0].Seq != 0 {
		t.Fatalf("bad envelope: %+v", msgs[0])
	}
	got, err := async.EventsFromMessage(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d changed: %+v vs %+v", i, events[i], got[i])
		}
	}
}

func TestEventsWireChunking(t *testing.T) {
	big := make([]async.Event, 4096+37)
	for i := range big {
		big[i] = async.Event{Round: i / 1000, Group: 1, Client: i % 50, Kind: async.Arrive, Tick: int64(i)}
	}
	msgs := async.EventsToMessages(big, 2)
	if len(msgs) != 2 {
		t.Fatalf("got %d frames, want 2", len(msgs))
	}
	if msgs[0].Seq != 0 || msgs[1].Seq != 1 {
		t.Fatalf("chunk seqs %d,%d", msgs[0].Seq, msgs[1].Seq)
	}
	var back []async.Event
	for _, m := range msgs {
		ev, err := async.EventsFromMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, ev...)
	}
	if len(back) != len(big) {
		t.Fatalf("decoded %d events, want %d", len(back), len(big))
	}
	for i := range big {
		if back[i] != big[i] {
			t.Fatalf("event %d changed", i)
		}
	}
	// Empty logs still produce one frame, distinguishable from absence.
	empty := async.EventsToMessages(nil, 0)
	if len(empty) != 1 || len(empty[0].Ints) != 0 {
		t.Fatalf("empty log encoded as %+v", empty)
	}
	if ev, err := async.EventsFromMessage(empty[0]); err != nil || len(ev) != 0 {
		t.Fatalf("empty frame decoded to %v, %v", ev, err)
	}
}

func TestEventsFromMessageStrict(t *testing.T) {
	good := async.EventsToMessages(testEvents(), 0)[0]
	bad := []struct {
		name string
		m    *wire.Message
	}{
		{"wrong-type", &wire.Message{Type: wire.GlobalModel}},
		{"floats", &wire.Message{Type: wire.ArrivalLog, Floats: []float64{1}}},
		{"shape", &wire.Message{Type: wire.ArrivalLog, Ints: good.Ints[:len(good.Ints)-1], Words: good.Words}},
		{"kind", &wire.Message{Type: wire.ArrivalLog, Ints: []int32{0, 0, 0, 99, 0}, Words: []uint64{1}}},
		{"negative-tick", &wire.Message{Type: wire.ArrivalLog, Ints: []int32{0, 0, 0, 0, 0}, Words: []uint64{math.MaxUint64}}},
	}
	for _, c := range bad {
		if _, err := async.EventsFromMessage(c.m); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
}

func TestModeAndKindStrings(t *testing.T) {
	if async.Buffered.String() != "async" || async.SemiSync.String() != "semisync" || async.Sync.String() != "sync" {
		t.Fatal("mode names drifted from experiment output vocabulary")
	}
	if async.Mode(9).String() != "Mode(9)" || async.Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown enum rendering drifted")
	}
}
