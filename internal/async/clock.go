package async

import (
	"fmt"

	"repro/internal/stats"
)

// DelayModel is the logical clock's tick source. Each dispatched client
// update takes BaseTicks plus a jitter draw in [0, JitterTicks], and with
// probability StragglerProb the whole delay is multiplied by
// StragglerFactor — the "straggler storm" regime where any dispatch can
// stall. All draws are integer ticks so replay never depends on float
// rounding.
type DelayModel struct {
	// BaseTicks is the floor latency of every update. Must be >= 1 when
	// the model is enabled so the logical clock always advances.
	BaseTicks int64
	// JitterTicks bounds the uniform jitter added on top of BaseTicks.
	JitterTicks int64
	// StragglerProb is the per-dispatch probability that the delay is
	// multiplied by StragglerFactor.
	StragglerProb float64
	// StragglerFactor is the slowdown multiplier for straggler draws.
	StragglerFactor int64
}

// Enabled reports whether the model produces nonzero delays.
func (d DelayModel) Enabled() bool {
	return d.BaseTicks > 0 || d.JitterTicks > 0
}

// Validate rejects models the clock cannot draw from deterministically.
func (d DelayModel) Validate() error {
	switch {
	case d.BaseTicks < 0 || d.JitterTicks < 0:
		return fmt.Errorf("async: delay ticks must be >= 0, got base=%d jitter=%d", d.BaseTicks, d.JitterTicks)
	case d.StragglerProb < 0 || d.StragglerProb > 1:
		return fmt.Errorf("async: StragglerProb must be in [0,1], got %v", d.StragglerProb)
	case d.StragglerProb > 0 && d.StragglerFactor < 1:
		return fmt.Errorf("async: StragglerFactor must be >= 1 when StragglerProb > 0, got %d", d.StragglerFactor)
	case d.Enabled() && d.BaseTicks < 1:
		return fmt.Errorf("async: enabled delay model needs BaseTicks >= 1, got %d", d.BaseTicks)
	}
	return nil
}

// DispatchSeed derives the RNG seed for one dispatch's delay draw. It is a
// pure function of the dispatch coordinates (global round, group, client,
// per-group dispatch ordinal k), so the draw is independent of scheduling,
// worker count, and arrival interleaving — the root of the replay
// contract. The multipliers are the same splitmix64/xxhash odd constants
// the engine uses for its per-client training streams, chosen here with
// distinct tags so delay draws never collide with training draws.
func DispatchSeed(seed uint64, round, group, client, k int) uint64 {
	s := seed ^ 0xa51c ^ (uint64(round+1) * 0x9e3779b97f4a7c15)
	s ^= uint64(group+1) * 0xc2b2ae3d27d4eb4f
	s ^= uint64(client+1) * 0xff51afd7ed558ccd
	s ^= uint64(k+1) * 0xc4ceb9fe1a85ec53
	return s
}

// Draw samples the delay for one dispatch. The draw order inside the
// stream is fixed (jitter first, then the straggler coin) so the model can
// grow without perturbing replays of existing fields.
func (d DelayModel) Draw(rng *stats.RNG) int64 {
	if !d.Enabled() {
		return 0
	}
	delay := d.BaseTicks
	if d.JitterTicks > 0 {
		delay += int64(rng.IntN(int(d.JitterTicks) + 1))
	}
	if d.StragglerProb > 0 && rng.Float64() < d.StragglerProb {
		delay *= d.StragglerFactor
	}
	if delay < 1 {
		delay = 1
	}
	return delay
}

// StragglerStorm is the delay preset matching the faultnet
// straggler-storm chaos plan: every dispatch has a 20% chance of running
// 20x slow, so a bulk-synchronous round almost surely waits for at least
// one straggler while buffered chains only pay for their own draws.
func StragglerStorm() DelayModel {
	return DelayModel{BaseTicks: 10, JitterTicks: 5, StragglerProb: 0.2, StragglerFactor: 20}
}

// SlowLinks is the delay preset for uniformly degraded links: high
// variance, no catastrophic tail.
func SlowLinks() DelayModel {
	return DelayModel{BaseTicks: 20, JitterTicks: 30}
}
