package async_test

import (
	"bytes"
	"testing"

	"repro/internal/async"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/faultnet"
	"repro/internal/grouping"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/wire"

	"repro/internal/core"
)

const fuzzMaxFrame = 1 << 20

// recordedLog runs one small buffered-async training and returns its real
// arrival log — the fuzz corpus is seeded from actual recorded frames, not
// hand-built ones, so the fuzzer starts from the payload shapes production
// writes.
func recordedLog(tb testing.TB) *async.Log {
	tb.Helper()
	gen := data.FlatConfig(4, 10, 1)
	gen.Noise = 0.8
	sys := core.NewSystem(core.SystemConfig{
		Generator: gen,
		Partition: data.PartitionConfig{
			NumClients: 8, Alpha: 0.5,
			MinSamples: 8, MaxSamples: 16, MeanSamples: 12, StdSamples: 3,
			Seed: 2,
		},
		NumEdges: 1,
		TestSize: 32,
		NewModel: func(s uint64) *nn.Sequential {
			return nn.NewMLP(10, []int{8}, 4, s)
		},
		ModelSeed: 7,
	})
	res := core.Train(sys, core.Config{
		GlobalRounds: 2, GroupRounds: 2, LocalEpochs: 1,
		BatchSize: 8, LR: 0.05, SampleGroups: 1,
		Grouping:    grouping.CoVGrouping{Config: grouping.Config{MinGS: 3, MaxCoV: 0.5, MergeLeftover: true}},
		Sampling:    sampling.Random,
		Weights:     sampling.Biased,
		Seed:        42,
		DropoutProb: 0.2,
		CostProfile: cost.CIFARProfile(),
		CostOps:     cost.DefaultOps(),
		Async: async.Config{
			Mode: async.Buffered, Alpha: 0.5, BufferFrac: 0.5,
			Delays: async.StragglerStorm(),
		},
	})
	if res.ArrivalLog == nil || res.ArrivalLog.Len() == 0 {
		tb.Fatal("recorded run produced no arrival log")
	}
	return res.ArrivalLog
}

// FuzzArrivalLogFrame is the satellite fuzz target for the new wire
// vocabulary: over arbitrary bytes, frame decode plus the strict event
// decode never panic, reject every corruption with an error, and any
// accepted frame round-trips through EventsToMessages bit-exactly.
func FuzzArrivalLogFrame(f *testing.F) {
	log := recordedLog(f)
	rng := stats.NewRNG(0xa51c)
	for _, m := range async.EventsToMessages(log.Events(), 1) {
		var buf bytes.Buffer
		if _, err := wire.Encode(&buf, m); err != nil {
			f.Fatalf("Encode: %v", err)
		}
		frame := buf.Bytes()
		f.Add(frame)
		f.Add(faultnet.CorruptBits(frame, 3, rng))
		f.Add(faultnet.TruncateFrame(frame, rng))
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, dataBytes []byte) {
		m, err := wire.Decode(bytes.NewReader(dataBytes), fuzzMaxFrame)
		if err != nil {
			if class := wire.ErrorClass(err); class == "" || class == "timeout" {
				t.Fatalf("Decode error %v maps to class %q", err, class)
			}
			return
		}
		if m.Type != wire.ArrivalLog {
			return
		}
		events, err := async.EventsFromMessage(m)
		if err != nil {
			return // strictly rejected — the contract under mutation
		}
		var back []async.Event
		for _, rm := range async.EventsToMessages(events, m.Round) {
			if rm.Round != m.Round {
				t.Fatalf("re-encode changed round: %d vs %d", rm.Round, m.Round)
			}
			ev, err := async.EventsFromMessage(rm)
			if err != nil {
				t.Fatalf("re-encoded frame rejected: %v", err)
			}
			back = append(back, ev...)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(back), len(events))
		}
		for i := range events {
			if back[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, events[i], back[i])
			}
		}
	})
}

// TestArrivalLogFrameCorruptionRejected pins the frame-level guarantee the
// fuzz corpus leans on: bit flips and truncations of a recorded log frame
// never decode.
func TestArrivalLogFrameCorruptionRejected(t *testing.T) {
	log := recordedLog(t)
	msgs := async.EventsToMessages(log.Events(), 1)
	var buf bytes.Buffer
	if _, err := wire.Encode(&buf, msgs[0]); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for seed := uint64(0); seed < 32; seed++ {
		rng := stats.NewRNG(seed)
		if _, err := wire.Decode(bytes.NewReader(faultnet.CorruptBits(frame, 1, rng)), fuzzMaxFrame); err == nil {
			t.Fatalf("seed %d: corrupted arrival-log frame decoded", seed)
		}
		if _, err := wire.Decode(bytes.NewReader(faultnet.TruncateFrame(frame, stats.NewRNG(seed))), fuzzMaxFrame); err == nil {
			t.Fatalf("seed %d: truncated arrival-log frame decoded", seed)
		}
	}
}
