package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"
	"testing/quick"
)

// sameMessage compares messages treating nil and empty vectors as equal and
// floats by bit pattern (NaNs must survive the trip).
func sameMessage(a, b *Message) bool {
	if a.Type != b.Type || a.Round != b.Round || a.Seq != b.Seq || a.From != b.From {
		return false
	}
	if len(a.Floats) != len(b.Floats) || len(a.Words) != len(b.Words) || len(a.Ints) != len(b.Ints) {
		return false
	}
	for i := range a.Floats {
		if math.Float64bits(a.Floats[i]) != math.Float64bits(b.Floats[i]) {
			return false
		}
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			return false
		}
	}
	return true
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	n, err := Encode(&buf, m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if n != m.EncodedSize() || n != buf.Len() {
		t.Fatalf("Encode wrote %d bytes, EncodedSize %d, buffer %d", n, m.EncodedSize(), buf.Len())
	}
	got, err := Decode(&buf, 0)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after decode", buf.Len())
	}
	return got
}

// TestQuickRoundTrip is the Encode∘Decode = id property over arbitrary
// messages, including NaN/Inf floats and all six types.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(tpick uint8, round, seq uint32, from int32, floats []float64, words []uint64, ints []int32) bool {
		m := &Message{
			Type:  Type(1 + int(tpick)%int(typeMax)),
			Round: round, Seq: seq, From: from,
			Floats: floats, Words: words, Ints: ints,
		}
		return sameMessage(m, roundTrip(t, m))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecialFloatsSurvive(t *testing.T) {
	m := &Message{Type: GlobalModel, Floats: []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0, math.SmallestNonzeroFloat64}}
	if !sameMessage(m, roundTrip(t, m)) {
		t.Fatal("special float values corrupted by round trip")
	}
}

func encodeValid(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	m := &Message{Type: MaskedUpdate, Round: 3, Seq: 1, From: 7, Words: []uint64{1, 2, 3}, Ints: []int32{-1, 4}}
	if _, err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestTruncatedFrames(t *testing.T) {
	frame := encodeValid(t)
	for cut := 1; cut < len(frame); cut++ {
		_, err := Decode(bytes.NewReader(frame[:cut]), 0)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// A clean EOF at a frame boundary is io.EOF, not corruption.
	if _, err := Decode(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestCorruptedFrames(t *testing.T) {
	base := encodeValid(t)
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), base...)
		mutate(b)
		_, err := Decode(bytes.NewReader(b), 0)
		return err
	}

	if err := corrupt(func(b []byte) { b[0] ^= 0xff }); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}
	if err := corrupt(func(b []byte) { b[3] = 99 }); !errors.Is(err, ErrBadType) {
		t.Fatalf("type: %v", err)
	}
	// Any payload bit flip must trip the CRC.
	if err := corrupt(func(b []byte) { b[HeaderSize] ^= 0x01 }); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: %v", err)
	}
	if err := corrupt(func(b []byte) { b[len(b)-1] ^= 0x80 }); !errors.Is(err, ErrChecksum) {
		t.Fatalf("tail flip: %v", err)
	}
	// A declared vector length that overruns the payload is malformed (the
	// CRC is recomputed so the length check itself is exercised).
	if err := corrupt(func(b []byte) {
		binary.BigEndian.PutUint32(b[HeaderSize+12:], 1<<30)
		binary.BigEndian.PutUint32(b[12:], crc32.ChecksumIEEE(b[HeaderSize:]))
	}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("vector overrun: %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{Type: GlobalModel, Floats: make([]float64, 4096)}
	if _, err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	_, err := Decode(&buf, 1024)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// The default limit admits the same frame.
	buf.Reset()
	if _, err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(&buf, 0); err != nil {
		t.Fatalf("default limit rejected a %d-byte frame: %v", m.EncodedSize(), err)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	frame := encodeValid(t)
	frame[2] = Version + 1
	_, err := Decode(bytes.NewReader(frame), 0)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestEncodeRejectsBadType(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, &Message{Type: 0}); !errors.Is(err, ErrBadType) {
		t.Fatalf("type 0: %v", err)
	}
	if _, err := Encode(&buf, &Message{Type: typeMax + 1}); !errors.Is(err, ErrBadType) {
		t.Fatalf("type %d: %v", typeMax+1, err)
	}
}

// TestStreamOfFrames decodes several back-to-back frames from one reader,
// the shape a real connection produces.
func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Type: GroupAssign, From: 2, Ints: []int32{0, 1, 2}},
		{Type: GlobalModel, Round: 1, Floats: []float64{0.5, -0.25}},
		{Type: GlobalAggregate, Round: 9},
	}
	for _, m := range msgs {
		if _, err := Encode(&buf, m); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := Decode(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !sameMessage(want, got) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, want, got)
		}
	}
	if _, err := Decode(&buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

// TestServingTypesPinned pins the serving-layer extension types to their
// wire values and names: checkpoint files written today must decode
// forever, so these constants can never be renumbered.
func TestServingTypesPinned(t *testing.T) {
	if Checkpoint != 7 || JobControl != 8 {
		t.Fatalf("serving types renumbered: Checkpoint=%d JobControl=%d, want 7/8", Checkpoint, JobControl)
	}
	if Checkpoint.String() != "Checkpoint" || JobControl.String() != "JobControl" {
		t.Fatalf("serving type names changed: %q, %q", Checkpoint, JobControl)
	}
	m := &Message{Type: Checkpoint, Round: 9, Seq: 1, From: -1,
		Floats: []float64{1.5, -2.25}, Words: []uint64{3, 4, 5}, Ints: []int32{6}}
	if !sameMessage(m, roundTrip(t, m)) {
		t.Fatal("Checkpoint frame corrupted by round trip")
	}
}
