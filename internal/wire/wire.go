// Package wire is the binary framing codec of the networked federation
// mode (internal/fednode): a versioned, length-prefixed frame format for
// the Alg. 1 message vocabulary — GlobalModel, GroupAssign, MaskedUpdate,
// ShareReveal, GroupAggregate, GlobalAggregate — plus the serving-layer
// extensions Checkpoint, JobControl (internal/felserve), and ArrivalLog
// (internal/async replay logs) — carrying float
// parameter vectors, field-element words, and integer id lists between the
// cloud, edge servers, and clients over any io.Reader/io.Writer (TCP in
// production, net.Pipe in tests) or into durable checkpoint files.
//
// Frame layout (big endian):
//
//	magic   uint16  0xFE1D
//	version uint8   1
//	type    uint8   message type (1..9)
//	round   uint32  global round id
//	paylen  uint32  payload byte count
//	crc     uint32  IEEE CRC32 of the payload
//	payload paylen bytes
//
// The payload encodes Seq, From, and the three typed vectors with explicit
// element counts. Decoding is strict: bad magic, unknown version or type,
// an oversized frame, a checksum mismatch, a truncated stream, or a payload
// whose declared vector lengths do not exactly consume it are all distinct
// errors — nothing is silently repaired. EncodedSize is exact, so callers
// can account bytes-on-the-wire without hitting the socket; internal/fednode
// feeds it into the per-message-type fel_wire_frames_total and
// fel_wire_bytes_total counters (internal/metrics), whose sum a clean run's
// tests pin to the transport byte count exactly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
)

// Type identifies one message of the Alg. 1 vocabulary.
type Type uint8

// The message vocabulary of one Group-FEL round trip (paper Fig. 1/Alg. 1).
const (
	// GlobalModel carries model parameters downstream: cloud→edge with the
	// selected group ids, or edge→client as the group-round broadcast.
	GlobalModel Type = 1 + iota
	// GroupAssign carries group membership: node registration (From = id),
	// cloud→edge formation results, and edge→client index assignment.
	GroupAssign
	// MaskedUpdate is a client's secure-aggregation-masked local update
	// (field elements in Words; plaintext Floats only for singleton groups).
	MaskedUpdate
	// ShareReveal is the dropout-recovery exchange: edge→survivor names the
	// dropped indices, survivor→edge returns its held Shamir shares.
	ShareReveal
	// GroupAggregate is an edge's unmasked group model after K group rounds.
	GroupAggregate
	// GlobalAggregate is the final global model, broadcast at shutdown.
	GlobalAggregate
	// Checkpoint is a durable-state record of the serving layer
	// (internal/felserve): trainer snapshots — round counters, sampling
	// RNG words, global parameters, SCAFFOLD variates — framed for the
	// checkpoint file, never sent over a socket mid-job.
	Checkpoint
	// JobControl is the felserve admission-control exchange: a subscriber's
	// hello naming its job (Seq carries the opcode) and the service's
	// admit/reject verdict.
	JobControl
	// ArrivalLog carries a chunk of an async-mode arrival log
	// (internal/async): 5 Ints + 1 Word per event, Seq numbering the
	// chunks. Framed into checkpoint files alongside Checkpoint records
	// so buffered-async jobs resume with a byte-identical replay log.
	ArrivalLog

	typeMax = ArrivalLog
)

// String returns the wire name of the type.
func (t Type) String() string {
	switch t {
	case GlobalModel:
		return "GlobalModel"
	case GroupAssign:
		return "GroupAssign"
	case MaskedUpdate:
		return "MaskedUpdate"
	case ShareReveal:
		return "ShareReveal"
	case GroupAggregate:
		return "GroupAggregate"
	case GlobalAggregate:
		return "GlobalAggregate"
	case Checkpoint:
		return "Checkpoint"
	case JobControl:
		return "JobControl"
	case ArrivalLog:
		return "ArrivalLog"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

const (
	// Magic opens every frame.
	Magic uint16 = 0xFE1D
	// Version is the current protocol version.
	Version uint8 = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// DefaultMaxFrame bounds a frame's payload unless the caller overrides
	// it: 64 MiB covers ~8M float64 parameters.
	DefaultMaxFrame = 64 << 20
)

// Strict decode errors, matchable with errors.Is.
var (
	ErrBadMagic  = errors.New("wire: bad frame magic")
	ErrVersion   = errors.New("wire: unsupported protocol version")
	ErrBadType   = errors.New("wire: unknown message type")
	ErrTooLarge  = errors.New("wire: frame exceeds size limit")
	ErrChecksum  = errors.New("wire: payload checksum mismatch")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrMalformed = errors.New("wire: malformed payload")
)

// Message is one protocol message. Round is the global round t; Seq is the
// group round k (or a secondary counter); From names the subject — a client
// index, group id, or edge id depending on Type. The three vectors carry
// model parameters (Floats), field elements or Shamir shares (Words), and
// id lists (Ints).
type Message struct {
	Type  Type
	Round uint32
	Seq   uint32
	From  int32
	// Floats holds model parameter vectors.
	Floats []float64
	// Words holds prime-field elements (masked updates) or share pairs.
	Words []uint64
	// Ints holds id lists (group members, selected groups, dropped indices).
	Ints []int32
}

// EncodedSize returns the exact on-the-wire byte count of the message,
// header included.
func (m *Message) EncodedSize() int {
	return HeaderSize + m.payloadSize()
}

func (m *Message) payloadSize() int {
	// seq(4) + from(4) + three length-prefixed vectors.
	return 8 + 4 + 8*len(m.Floats) + 4 + 8*len(m.Words) + 4 + 4*len(m.Ints)
}

// Encode writes the message as one frame, returning the bytes written.
// The write is a single Write call so a frame is never interleaved when the
// caller serializes access to the writer.
func Encode(w io.Writer, m *Message) (int, error) {
	if m.Type < 1 || m.Type > typeMax {
		return 0, fmt.Errorf("%w: %d", ErrBadType, uint8(m.Type))
	}
	payLen := m.payloadSize()
	buf := make([]byte, HeaderSize+payLen)
	p := buf[HeaderSize:]
	binary.BigEndian.PutUint32(p[0:], m.Seq)
	binary.BigEndian.PutUint32(p[4:], uint32(m.From))
	off := 8
	binary.BigEndian.PutUint32(p[off:], uint32(len(m.Floats)))
	off += 4
	for _, f := range m.Floats {
		binary.BigEndian.PutUint64(p[off:], math.Float64bits(f))
		off += 8
	}
	binary.BigEndian.PutUint32(p[off:], uint32(len(m.Words)))
	off += 4
	for _, v := range m.Words {
		binary.BigEndian.PutUint64(p[off:], v)
		off += 8
	}
	binary.BigEndian.PutUint32(p[off:], uint32(len(m.Ints)))
	off += 4
	for _, v := range m.Ints {
		binary.BigEndian.PutUint32(p[off:], uint32(v))
		off += 4
	}

	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = uint8(m.Type)
	binary.BigEndian.PutUint32(buf[4:], m.Round)
	binary.BigEndian.PutUint32(buf[8:], uint32(payLen))
	binary.BigEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(p))
	return w.Write(buf)
}

// Decode reads one frame from r. maxFrame bounds the payload length (<= 0
// uses DefaultMaxFrame). A clean EOF before any header byte returns io.EOF;
// every other short read returns ErrTruncated.
func Decode(r io.Reader, maxFrame int) (*Message, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		// Wrap (not flatten) the transport error: a net.Error timeout must
		// stay visible through errors.As so callers can tell a straggler
		// deadline from a torn frame.
		return nil, fmt.Errorf("%w: header: %w", ErrTruncated, err)
	}
	if got := binary.BigEndian.Uint16(hdr[0:]); got != Magic {
		return nil, fmt.Errorf("%w: 0x%04x", ErrBadMagic, got)
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, hdr[2], Version)
	}
	typ := Type(hdr[3])
	if typ < 1 || typ > typeMax {
		return nil, fmt.Errorf("%w: %d", ErrBadType, hdr[3])
	}
	payLen := int(binary.BigEndian.Uint32(hdr[8:]))
	if payLen > maxFrame {
		return nil, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, payLen, maxFrame)
	}
	if payLen < 20 { // seq + from + three zero-length vector counts
		return nil, fmt.Errorf("%w: payload %d below minimum 20", ErrMalformed, payLen)
	}
	p := make([]byte, payLen)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, fmt.Errorf("%w: payload: %w", ErrTruncated, err)
	}
	if got, want := crc32.ChecksumIEEE(p), binary.BigEndian.Uint32(hdr[12:]); got != want {
		return nil, fmt.Errorf("%w: got 0x%08x, want 0x%08x", ErrChecksum, got, want)
	}

	m := &Message{
		Type:  typ,
		Round: binary.BigEndian.Uint32(hdr[4:]),
		Seq:   binary.BigEndian.Uint32(p[0:]),
		From:  int32(binary.BigEndian.Uint32(p[4:])),
	}
	off := 8
	n, off, err := vectorLen(p, off, 8)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Floats = make([]float64, n)
		for i := range m.Floats {
			m.Floats[i] = math.Float64frombits(binary.BigEndian.Uint64(p[off:]))
			off += 8
		}
	}
	n, off, err = vectorLen(p, off, 8)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Words = make([]uint64, n)
		for i := range m.Words {
			m.Words[i] = binary.BigEndian.Uint64(p[off:])
			off += 8
		}
	}
	n, off, err = vectorLen(p, off, 4)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Ints = make([]int32, n)
		for i := range m.Ints {
			m.Ints[i] = int32(binary.BigEndian.Uint32(p[off:]))
			off += 4
		}
	}
	if off != payLen {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrMalformed, payLen-off)
	}
	return m, nil
}

// ErrorClass maps a Decode error to a short stable label, the reason
// dimension of fel_wire_decode_errors_total. A nil error maps to "", a clean
// io.EOF to "eof", and a net.Error timeout to "timeout" even when wrapped in
// ErrTruncated — a straggler deadline is not a torn frame. Everything the
// codec itself diagnoses keeps its sentinel's name; unrecognized transport
// failures fall back to "io".
func ErrorClass(err error) string {
	var ne net.Error
	switch {
	case err == nil:
		return ""
	case errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, ErrBadMagic):
		return "bad_magic"
	case errors.Is(err, ErrVersion):
		return "version"
	case errors.Is(err, ErrBadType):
		return "bad_type"
	case errors.Is(err, ErrTooLarge):
		return "too_large"
	case errors.Is(err, ErrChecksum):
		return "checksum"
	case errors.Is(err, ErrTruncated):
		return "truncated"
	case errors.Is(err, ErrMalformed):
		return "malformed"
	case errors.Is(err, io.EOF):
		return "eof"
	default:
		return "io"
	}
}

// vectorLen reads a vector's element count at p[off:] and checks that
// elemSize·count fits in the remaining payload.
func vectorLen(p []byte, off, elemSize int) (n, next int, err error) {
	if off+4 > len(p) {
		return 0, 0, fmt.Errorf("%w: vector count past payload end", ErrMalformed)
	}
	n = int(binary.BigEndian.Uint32(p[off:]))
	next = off + 4
	if n < 0 || n > (len(p)-next)/elemSize {
		return 0, 0, fmt.Errorf("%w: vector of %d elements overruns %d-byte payload", ErrMalformed, n, len(p))
	}
	return n, next, nil
}
