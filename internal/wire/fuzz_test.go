package wire_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/faultnet"
	"repro/internal/stats"
	"repro/internal/wire"
)

// fuzzMaxFrame keeps the fuzzer from allocating per the header's own
// claimed payload length.
const fuzzMaxFrame = 1 << 20

// encodeFrame builds one valid frame for the corpus.
func encodeFrame(tb testing.TB, m *wire.Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := wire.Encode(&buf, m); err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// corpusMessages covers all nine message types with every vector population
// the codec distinguishes: floats only, words only, ints only, all three,
// all empty, and special float values. The Checkpoint entries mirror the
// felserve spec/async frame shapes and the ArrivalLog entry mirrors the
// internal/async event encoding (5 ints + 1 word per event), so the fuzzer
// starts at the exact payload layouts the serving layer persists.
func corpusMessages() []*wire.Message {
	return []*wire.Message{
		{Type: wire.GlobalModel, Round: 0, Seq: 0, From: -1, Floats: []float64{0.5, -1.25, 3e-9}},
		{Type: wire.GroupAssign, Round: 1, Seq: 0, From: 4, Ints: []int32{0, 7, 11}},
		{Type: wire.MaskedUpdate, Round: 2, Seq: 1, From: 9, Words: []uint64{1, 1<<61 - 1, 42}},
		{Type: wire.ShareReveal, Round: 3, Seq: 0, From: 2, Words: []uint64{5, 6}, Ints: []int32{1}},
		{Type: wire.GroupAggregate, Round: 4, Seq: 1, From: 0, Floats: []float64{math.Inf(1), math.NaN(), -0.0}},
		{Type: wire.GlobalAggregate, Round: 5, Seq: 0, From: -1, Floats: []float64{1}, Words: []uint64{2}, Ints: []int32{3}},
		{Type: wire.Checkpoint, Round: 6, Seq: 0, From: -1,
			Floats: []float64{0.05, 0, 1.5}, Words: []uint64{0xdeadbeef, 7},
			Ints: []int32{6, 2, 1, 16, 0, 3, 1, 0, 0, 1, 0}},
		{Type: wire.JobControl, Round: 0, Seq: 1, From: 12, Ints: []int32{104, 105}},
		{Type: wire.ArrivalLog, Round: 7, Seq: 0, From: -1,
			Words: []uint64{12, 30, 30},
			Ints: []int32{
				7, 0, 3, 0, 0, // arrive
				7, 0, 5, 1, 0, // drop
				7, 0, -1, 2, 2, // flush
			}},
	}
}

// FuzzDecodeFrame asserts the decoder's contract over arbitrary bytes:
// it never panics, every failure maps to a named error class, and every
// successful decode re-encodes to a frame that decodes back to the same
// message. The corpus seeds valid frames of every type plus frames mangled
// by the faultnet mutators, so the fuzzer starts at the exact boundaries
// the chaos harness exercises at runtime.
func FuzzDecodeFrame(f *testing.F) {
	rng := stats.NewRNG(0xFE1D)
	for _, m := range corpusMessages() {
		frame := encodeFrame(f, m)
		f.Add(frame)
		f.Add(faultnet.CorruptBits(frame, 3, rng))
		f.Add(faultnet.TruncateFrame(frame, rng))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFE}, wire.HeaderSize))
	f.Add(bytes.Repeat([]byte{0x00}, wire.HeaderSize+20))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.Decode(bytes.NewReader(data), fuzzMaxFrame)
		if err != nil {
			if class := wire.ErrorClass(err); class == "" || class == "timeout" {
				t.Fatalf("Decode error %v maps to class %q; every decode failure needs a real class", err, class)
			}
			return
		}
		reframed := encodeFrame(t, m)
		m2, err := wire.Decode(bytes.NewReader(reframed), fuzzMaxFrame)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if m2.Type != m.Type || m2.Round != m.Round || m2.Seq != m.Seq || m2.From != m.From {
			t.Fatalf("round trip changed envelope: %+v vs %+v", m, m2)
		}
		if len(m2.Floats) != len(m.Floats) || len(m2.Words) != len(m.Words) || len(m2.Ints) != len(m.Ints) {
			t.Fatalf("round trip changed vector lengths: %+v vs %+v", m, m2)
		}
		for i := range m.Floats {
			if math.Float64bits(m2.Floats[i]) != math.Float64bits(m.Floats[i]) {
				t.Fatalf("float %d changed: %x vs %x", i, math.Float64bits(m.Floats[i]), math.Float64bits(m2.Floats[i]))
			}
		}
		for i := range m.Words {
			if m2.Words[i] != m.Words[i] {
				t.Fatalf("word %d changed: %d vs %d", i, m.Words[i], m2.Words[i])
			}
		}
		for i := range m.Ints {
			if m2.Ints[i] != m.Ints[i] {
				t.Fatalf("int %d changed: %d vs %d", i, m.Ints[i], m2.Ints[i])
			}
		}
	})
}

// TestCorruptionsAlwaysRejected pins the CRC property the fuzz corpus leans
// on: for every message type and many seeds, payload bit flips of one to
// three bits are always caught. CRC32-IEEE has Hamming distance >= 4 at
// these frame sizes, so detection must be certain, not probabilistic.
func TestCorruptionsAlwaysRejected(t *testing.T) {
	for _, m := range corpusMessages() {
		frame := encodeFrame(t, m)
		for seed := uint64(0); seed < 64; seed++ {
			rng := stats.NewRNG(seed)
			flips := 1 + 2*int(seed%2) // odd, so flips can never cancel to a net no-op
			bad := faultnet.CorruptBits(frame, flips, rng)
			if bytes.Equal(bad, frame) {
				t.Fatalf("type %v seed %d: mutator flipped nothing", m.Type, seed)
			}
			_, err := wire.Decode(bytes.NewReader(bad), fuzzMaxFrame)
			if !errors.Is(err, wire.ErrChecksum) {
				t.Fatalf("type %v seed %d flips %d: corrupted frame decoded with err=%v, want ErrChecksum", m.Type, seed, flips, err)
			}
		}
	}
}

// TestTruncationsAlwaysRejected is the same pin for the truncation mutator:
// a strict prefix of a frame must never decode as a message.
func TestTruncationsAlwaysRejected(t *testing.T) {
	for _, m := range corpusMessages() {
		frame := encodeFrame(t, m)
		for seed := uint64(0); seed < 64; seed++ {
			bad := faultnet.TruncateFrame(frame, stats.NewRNG(seed))
			if len(bad) >= len(frame) {
				t.Fatalf("type %v seed %d: mutator did not shorten the frame", m.Type, seed)
			}
			_, err := wire.Decode(bytes.NewReader(bad), fuzzMaxFrame)
			if !errors.Is(err, wire.ErrTruncated) {
				t.Fatalf("type %v seed %d: truncated frame decoded with err=%v, want ErrTruncated", m.Type, seed, err)
			}
		}
	}
}
