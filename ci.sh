#!/usr/bin/env bash
# ci.sh — the repository's full verification gate.
#
# Runs, in order:
#   1. go build        — everything compiles
#   2. go vet          — stock vet findings
#   3. repolint        — the project's own invariants (internal/lint):
#                        rng-discipline, goroutine-join, float-eq,
#                        dropped-error, panic-message, map-order, wallclock,
#                        hotpath-alloc, metric-schema, ignore-audit. Runs as
#                        its own timed stage with a 30s budget so analysis
#                        cost stays visible as the codebase grows.
#   4. go test ./...   — tier-1 tests (includes the module-wide lint pass
#                        and the GOMAXPROCS replay determinism test)
#   5. go test -race   — race detector over the concurrency-bearing
#                        packages (tensor matmul fan-out, core parallel
#                        training engine incl. the worker pool, pooled
#                        group spaces, and SCAFFOLD's shared state
#                        (TestEngineWorkerPoolRace), simnet event loop,
#                        wire codec, fednode cloud/edge/client servers,
#                        metrics registry)
#   6. scale smoke     — the virtualized-population gate: the O(selected)
#                        memory test (a 4× larger flyweight population must
#                        not allocate proportionally more per round) runs
#                        under -race, then felbench -scalebench drives the
#                        100k-client grid row end to end through the CLI
#                        (1M lives in the full grid, see EXPERIMENTS.md)
#   7. perf smoke      — one medium cell of the felbench engine grid
#                        (GOMAXPROCS=4, MaxParallel=8, blocked kernels)
#                        runs end to end; felbench exits 1 if the cell's
#                        final weights diverge bit-for-bit from the naive
#                        serial baseline, so this gates the blocked-GEMM
#                        + tree-aggregation determinism contract on every
#                        push (full grid: felbench -bench all)
#   8. async smoke     — the buffered-async determinism gate: the α=0
#                        full-buffer property test (async ≡ sync bit for
#                        bit at several parallelism levels) runs under
#                        -race, then felbench -exp async-vs-sync drives
#                        every aggregation mode end to end and exits 1 if
#                        any gate fails (bit-identity, strictly fewer
#                        logical ticks, equal-or-better accuracy)
#   9. fuzz smoke      — every fuzz target runs randomized inputs on a 10s
#                        total budget (FuzzDecodeFrame over the wire codec
#                        and FuzzArrivalLogFrame over the arrival-log
#                        frames, both seeded from faultnet's corruption
#                        mutators)
#  10. chaos smoke     — felnode -chaos runs a named fault-injection
#                        scenario twice against a full loopback federation
#                        and diffs the fault event logs and timing-masked
#                        metrics snapshots byte for byte
#  11. felnode smoke   — a real networked loopback job over 127.0.0.1 TCP
#                        (2 edges × 12 clients × 2 rounds), which also
#                        cross-checks accuracy against the in-process
#                        trainer and transport bytes against the codec's
#                        accounting
#  12. metrics smoke   — the same loopback job with -metrics: polls the
#                        live HTTP endpoint until the snapshot exposes
#                        fel_wire_bytes_total and checks every line parses
#                        as Prometheus text exposition
#  13. load smoke      — the felserve serving layer under -race: hundreds of
#                        loopback subscribers fan in on a multi-job cloud
#                        (TestServeLoadSmoke), every subscriber must land on
#                        the correct final aggregate and the goroutine count
#                        must settle back to its pre-run level, then the
#                        kill-cloud chaos exercise proves a crash-restarted
#                        cloud resumes bit-identically
#
# Future PRs inherit this gate: run ./ci.sh before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== repolint (30s budget)"
lintdir="$(mktemp -d)"
trap 'rm -rf "$lintdir"' EXIT
go build -o "$lintdir/repolint" ./cmd/repolint
lint_start=$SECONDS
"$lintdir/repolint"
lint_elapsed=$(( SECONDS - lint_start ))
echo "repolint: module-wide pass took ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 30 ]; then
  echo "ci.sh: repolint exceeded its 30s budget (${lint_elapsed}s)" >&2
  exit 1
fi
rm -rf "$lintdir"
trap - EXIT

echo "== go test ./..."
go test ./...

echo "== go test -race (tensor, core, async, simnet, wire, fednode, faultnet, metrics, felserve)"
go test -race ./internal/tensor ./internal/core ./internal/async ./internal/simnet ./internal/wire ./internal/fednode ./internal/faultnet/... ./internal/metrics ./internal/felserve

echo "== scale smoke (O(selected) memory under -race, 100k grid row via felbench)"
go test -race -count=1 -run 'TestPopScaleOSelectedMemory' ./internal/experiments
scaledir="$(mktemp -d)"
trap 'rm -rf "$scaledir"' EXIT
go run ./cmd/felbench -scalebench 100k -out "$scaledir"
if ! grep -q '"id": "100k"' "$scaledir/BENCH_scale.json"; then
  echo "ci.sh: felbench -scalebench wrote no 100k row" >&2
  exit 1
fi
rm -rf "$scaledir"
trap - EXIT

echo "== perf smoke (one medium bench-grid cell, bit-identity gated)"
perfdir="$(mktemp -d)"
trap 'rm -rf "$perfdir"' EXIT
go run ./cmd/felbench -bench medium -benchprocs 4 -benchpar 8 -benchrepeats 1 -out "$perfdir"
if ! grep -q '"bit_identical": true' "$perfdir/BENCH_grid.json"; then
  echo "ci.sh: perf smoke cell is not bit-identical to the serial baseline" >&2
  exit 1
fi
rm -rf "$perfdir"
trap - EXIT

echo "== async smoke (alpha=0 equivalence under -race, async-vs-sync gates via felbench)"
go test -race -count=1 -run 'TestAsyncAlphaZeroFullBufferEquivalence' ./internal/core
asyncdir="$(mktemp -d)"
trap 'rm -rf "$asyncdir"' EXIT
go run ./cmd/felbench -exp async-vs-sync -scale small -out "$asyncdir"
if ! grep -q '"Pass": true' "$asyncdir/BENCH_async.json"; then
  echo "ci.sh: async-vs-sync gates failed" >&2
  exit 1
fi
rm -rf "$asyncdir"
trap - EXIT

echo "== go test -fuzz smoke (10s total across targets)"
go test ./internal/wire -run '^$' -fuzz FuzzDecodeFrame -fuzztime 5s
go test ./internal/async -run '^$' -fuzz FuzzArrivalLogFrame -fuzztime 5s

echo "== felnode -chaos smoke (deterministic replay)"
chaosdir="$(mktemp -d)"
trap 'rm -rf "$chaosdir"' EXIT
go build -o "$chaosdir/felnode" ./cmd/felnode
"$chaosdir/felnode" -chaos corrupt-frames > "$chaosdir/run1.txt"
"$chaosdir/felnode" -chaos corrupt-frames > "$chaosdir/run2.txt"
if ! diff -u "$chaosdir/run1.txt" "$chaosdir/run2.txt"; then
  echo "ci.sh: chaos scenario replay is not deterministic" >&2
  exit 1
fi
echo "chaos smoke: corrupt-frames replayed byte-identically"
rm -rf "$chaosdir"
trap - EXIT

echo "== felnode loopback smoke (TCP on 127.0.0.1)"
timeout 120 go run ./cmd/felnode -role loopback -clients 12 -edges 2 -rounds 2

echo "== felnode -metrics smoke (live HTTP endpoint)"
smokedir="$(mktemp -d)"
smokepid=""
cleanup_smoke() {
  if [ -n "$smokepid" ]; then
    kill "$smokepid" 2>/dev/null || true
    wait "$smokepid" 2>/dev/null || true
    smokepid=""
  fi
  rm -rf "$smokedir"
}
trap cleanup_smoke EXIT
go build -o "$smokedir/felnode" ./cmd/felnode
"$smokedir/felnode" -role loopback -clients 12 -edges 2 -rounds 2 \
  -metrics 127.0.0.1:19137 -hold 60s > "$smokedir/out.log" 2>&1 &
smokepid=$!
snapshot=""
for _ in $(seq 1 120); do
  if snapshot="$(curl -sf http://127.0.0.1:19137/metrics 2>/dev/null)" \
     && grep -q '^fel_wire_bytes_total' <<<"$snapshot"; then
    break
  fi
  snapshot=""
  sleep 0.5
done
if [ -z "$snapshot" ]; then
  echo "ci.sh: metrics endpoint never served fel_wire_bytes_total" >&2
  cat "$smokedir/out.log" >&2 || true
  exit 1
fi
if bad="$(grep -Ev '^#|^$|^fel_[a-z0-9_]+(\{[^}]*\})? -?[0-9][0-9eE+.-]*$' <<<"$snapshot")" && [ -n "$bad" ]; then
  echo "ci.sh: metrics snapshot has unparseable lines:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "metrics smoke: $(grep -c '^fel_' <<<"$snapshot") samples parsed, fel_wire_bytes_total present"
cleanup_smoke
trap - EXIT

echo "== felserve load smoke (loopback subscriber fan-in + leak check under -race)"
go test -race -count=1 -run 'TestServeLoadSmoke' ./internal/felserve
loaddir="$(mktemp -d)"
trap 'rm -rf "$loaddir"' EXIT
go build -o "$loaddir/felnode" ./cmd/felnode
timeout 300 "$loaddir/felnode" -chaos kill-cloud | tee "$loaddir/killcloud.txt"
if ! grep -q 'bit-identical=true' "$loaddir/killcloud.txt"; then
  echo "ci.sh: kill-cloud recovery was not bit-identical" >&2
  exit 1
fi
echo "load smoke: serving layer leak-free under -race, kill-cloud recovery bit-identical"
rm -rf "$loaddir"
trap - EXIT

echo "ci.sh: all gates passed"
