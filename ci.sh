#!/usr/bin/env bash
# ci.sh — the repository's full verification gate.
#
# Runs, in order:
#   1. go build        — everything compiles
#   2. go vet          — stock vet findings
#   3. repolint        — the project's own invariants (internal/lint):
#                        rng-discipline, naked-goroutine, float-eq,
#                        dropped-error, panic-message
#   4. go test ./...   — tier-1 tests (includes the module-wide lint pass
#                        and the GOMAXPROCS replay determinism test)
#   5. go test -race   — race detector over the concurrency-bearing
#                        packages (tensor matmul fan-out, core parallel
#                        group training, simnet event loop, wire codec,
#                        fednode cloud/edge/client servers)
#   6. felnode smoke   — a real networked loopback job over 127.0.0.1 TCP
#                        (2 edges × 12 clients × 2 rounds), which also
#                        cross-checks accuracy against the in-process
#                        trainer and transport bytes against the codec's
#                        accounting
#
# Future PRs inherit this gate: run ./ci.sh before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== repolint"
go run ./cmd/repolint

echo "== go test ./..."
go test ./...

echo "== go test -race (tensor, core, simnet, wire, fednode)"
go test -race ./internal/tensor ./internal/core ./internal/simnet ./internal/wire ./internal/fednode

echo "== felnode loopback smoke (TCP on 127.0.0.1)"
timeout 120 go run ./cmd/felnode -role loopback -clients 12 -edges 2 -rounds 2

echo "ci.sh: all gates passed"
