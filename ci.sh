#!/usr/bin/env bash
# ci.sh — the repository's full verification gate.
#
# Runs, in order:
#   1. go build        — everything compiles
#   2. go vet          — stock vet findings
#   3. repolint        — the project's own invariants (internal/lint):
#                        rng-discipline, naked-goroutine, float-eq,
#                        dropped-error, panic-message
#   4. go test ./...   — tier-1 tests (includes the module-wide lint pass
#                        and the GOMAXPROCS replay determinism test)
#   5. go test -race   — race detector over the concurrency-bearing
#                        packages (tensor matmul fan-out, core parallel
#                        group training, simnet event loop)
#
# Future PRs inherit this gate: run ./ci.sh before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== repolint"
go run ./cmd/repolint

echo "== go test ./..."
go test ./...

echo "== go test -race (tensor, core, simnet)"
go test -race ./internal/tensor ./internal/core ./internal/simnet

echo "ci.sh: all gates passed"
