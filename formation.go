package groupfel

import (
	"repro/internal/grouping"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// Group formation (Sec. 5).
type (
	// Group is a formed client group with its label histogram.
	Group = grouping.Group
	// GroupingConfig carries MinGS / MaxCoV / leftover handling.
	GroupingConfig = grouping.Config
	// GroupingAlgorithm forms groups at one edge server.
	GroupingAlgorithm = grouping.Algorithm
	// CoVGrouping is the paper's Algorithm 2.
	CoVGrouping = grouping.CoVGrouping
	// RandomGrouping is the RG baseline.
	RandomGrouping = grouping.RandomGrouping
	// CDGrouping is OUEA's cluster-then-distribute policy.
	CDGrouping = grouping.CDGrouping
	// KLDGrouping is SHARE's KL-divergence policy.
	KLDGrouping = grouping.KLDGrouping
	// VarianceGrouping is the scale-sensitive ablation criterion.
	VarianceGrouping = grouping.VarianceGrouping
)

// FormGroups runs an algorithm over every edge's client set (Alg. 1
// lines 2–3).
func FormGroups(alg GroupingAlgorithm, edges [][]*Client, classes int, seed uint64) []*Group {
	return grouping.FormAll(alg, edges, classes, stats.NewRNG(seed))
}

// Group sampling (Sec. 6).
type (
	// SamplingMethod selects the probability scheme.
	SamplingMethod = sampling.Method
	// WeightScheme selects the aggregation weighting.
	WeightScheme = sampling.WeightScheme
)

// Sampling methods (Eq. 34 with w(x) = x, x², e^{x²}).
const (
	RandomSampling = sampling.Random
	RCoV           = sampling.RCoV
	SRCoV          = sampling.SRCoV
	ESRCoV         = sampling.ESRCoV
)

// Aggregation weight schemes.
const (
	// BiasedWeights is Alg. 1 line 15 (n_g/n_t over the selected set).
	BiasedWeights = sampling.Biased
	// UnbiasedWeights applies the 1/(p_g·S) correction of Eq. 4.
	UnbiasedWeights = sampling.Unbiased
	// StabilizedWeights normalizes the unbiased weights (Eq. 35).
	StabilizedWeights = sampling.Stabilized
)

// SamplingProbabilities computes p over groups for a method (Eq. 34).
func SamplingProbabilities(groups []*Group, m SamplingMethod) []float64 {
	return sampling.Probabilities(groups, m)
}

// GroupCoV returns the coefficient of variation of a label histogram
// (Eq. 27), the paper's grouping criterion.
func GroupCoV(counts []float64) float64 { return stats.CoVOfCounts(counts) }
