package groupfel

import (
	"repro/internal/backdoor"
	"repro/internal/compress"
	"repro/internal/cost"
	"repro/internal/secagg"
	"repro/internal/theory"
)

// Cost model (Sec. 3.2, Eq. 5).
type (
	// CostProfile holds per-task cost coefficients.
	CostProfile = cost.Profile
	// CostOps selects the group operations charged per aggregation.
	CostOps = cost.OpSet
	// CostAccountant accumulates Eq. 5 across a run.
	CostAccountant = cost.Accountant
)

// CIFARProfile returns the CIFAR cost coefficients (Fig. 8 calibration).
func CIFARProfile() CostProfile { return cost.CIFARProfile() }

// SCProfile returns the SpeechCommands cost coefficients.
func SCProfile() CostProfile { return cost.SCProfile() }

// DefaultCostOps enables secure aggregation plus backdoor detection.
func DefaultCostOps() CostOps { return cost.DefaultOps() }

// NewCostAccountant creates an Eq. 5 accountant.
func NewCostAccountant(p CostProfile, ops CostOps) *CostAccountant {
	return cost.NewAccountant(p, ops)
}

// Secure aggregation substrate (the group operation behind the quadratic
// overhead; Bonawitz-style pairwise masking with Shamir dropout recovery).
type (
	// SecAggSession runs one secure aggregation among a group.
	SecAggSession = secagg.Session
	// SecAggQuantizer maps float updates to field elements.
	SecAggQuantizer = secagg.Quantizer
)

// NewSecAggSession prepares a secure aggregation of n clients over
// dim-dimensional updates with Shamir threshold t.
func NewSecAggSession(n, dim, t int, seed uint64, q SecAggQuantizer) *SecAggSession {
	return secagg.NewSession(n, dim, t, seed, q)
}

// DefaultQuantizer returns the standard fixed-point quantizer.
func DefaultQuantizer() SecAggQuantizer { return secagg.DefaultQuantizer() }

// Backdoor detection substrate (FLAME-style cosine clustering + norm clip).
type (
	// BackdoorConfig tunes the detector.
	BackdoorConfig = backdoor.Config
	// BackdoorResult reports accepted/flagged updates.
	BackdoorResult = backdoor.Result
)

// DetectBackdoors filters a group's update vectors.
func DetectBackdoors(updates [][]float64, cfg BackdoorConfig) BackdoorResult {
	return backdoor.Detect(updates, cfg)
}

// DefaultBackdoorConfig mirrors FLAME's posture.
func DefaultBackdoorConfig() BackdoorConfig { return backdoor.DefaultConfig() }

// Convergence bound (Theorem 1).
type (
	// TheoryParams collects the constants of Theorem 1.
	TheoryParams = theory.Params
)

// ConvergenceBound evaluates the Theorem 1 right-hand side.
func ConvergenceBound(p TheoryParams) float64 { return theory.Bound(p) }

// TheoryFromSystem fills the structural factors (γ, Γ, Γ_p, ζ_g proxy)
// from a concrete grouping and sampling vector.
func TheoryFromSystem(groups []*Group, probs []float64, base TheoryParams) TheoryParams {
	return theory.FromSystem(groups, probs, base)
}

// Update compression (the communication-side cost lever of Sec. 2.3).
type (
	// Compressor encodes client update deltas.
	Compressor = compress.Compressor
	// Compressed is an encoded update with a wire size.
	Compressed = compress.Compressed
)

// NewTopKCompressor keeps the k largest-magnitude coordinates with error
// feedback.
func NewTopKCompressor(k int) Compressor { return compress.NewTopK(k) }

// NewUniformCompressor is a QSGD-style b-bit stochastic quantizer.
func NewUniformCompressor(bits int, seed uint64) Compressor { return compress.NewUniform(bits, seed) }
